"""Fig 7 — accuracy of the 0.98-quantile query as a function of the
kurtosis of the data.

Published shape: DDSketch (and UDDSketch within its collapse budget)
flat across the sweep; distribution-dependent sketches degrade as the
tail grows, with KLL worst on the Pareto end and REQ rescued by its
biased sampling.
"""

from benchmarks.conftest import emit
from repro.experiments.kurtosis_sweep import run_kurtosis_sweep


def bench_fig7_kurtosis(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_kurtosis_sweep(scale=scale), rounds=1, iterations=1
    )
    emit(result.to_table())

    # The x-axis spans tail-free to extremely long-tailed.
    assert result.measured_kurtosis["uniform"] < 0
    assert result.measured_kurtosis["pareto"] > 100
    # DDSketch stable everywhere.
    for label in result.labels:
        assert result.errors[label]["ddsketch"].mean <= 0.0101, label
    # KLL degrades with kurtosis (uniform -> pareto).
    assert (
        result.errors["pareto"]["kll"].mean
        > result.errors["uniform"]["kll"].mean
    )
    # REQ beats KLL on the heavy-tailed end (biased retention).
    assert (
        result.errors["pareto"]["req"].mean
        < result.errors["pareto"]["kll"].mean
    )
    benchmark.extra_info["errors"] = {
        label: {s: ci.mean for s, ci in by_sketch.items()}
        for label, by_sketch in result.errors.items()
    }
