"""Cluster throughput benchmark — the gate behind ``BENCH_cluster.json``.

Not a paper figure: this measures the replicated cluster introduced
with :mod:`repro.cluster` (hash-ring sharding, WAL streaming to
followers, gossip anti-entropy).  Two sections:

1. **Requests/sec vs node count** — an in-process
   :class:`~repro.cluster.LocalCluster` at each node count, driven by
   concurrent proxy clients over real loopback TCP.  The tenant
   keyspace is spread across many metrics so the ring distributes
   leadership; ingest and keyed-query request rates are reported per
   node count, followed by a replication pass and the byte-level
   convergence check.  All nodes share one process (and the GIL), so
   the figure shows routing/replication *overhead* versus the
   single-node baseline, not linear scale-out.
2. **Failover timing** — on the deterministic
   :class:`~repro.service.clock.ManualClock`: crash the leader, tick
   until the supervisor view demotes it and a follower is promoted
   (detection/promotion, in clock ms), then restart it and tick until
   every replica is byte-identical again (catch-up, in clock ms).

The asserted *checks* are structural (rates positive, no acked write
lost, replicas converged); there is no speed gate — the numbers are
recorded for trend tracking.  Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_cluster.py --output . [--smoke]

``--smoke`` (or ``REPRO_SCALE=smoke``) shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.cluster import LocalCluster
from repro.data.traffic import LatencyValues, ZipfTenants
from repro.experiments.export import write_json

SEED = 20230807

FULL = {
    "node_counts": (1, 2, 3),
    "threads": 4,
    "ingest_requests_per_thread": 300,
    "query_requests_per_thread": 300,
    "batch": 64,
    "metrics": 12,
}
SMOKE = {
    "node_counts": (1, 3),
    "threads": 2,
    "ingest_requests_per_thread": 60,
    "query_requests_per_thread": 60,
    "batch": 32,
    "metrics": 6,
}

FAILOVER_VALUES = 2_000
FAILOVER_STEP_MS = 250.0
FAILOVER_DEADLINE_MS = 60_000.0


def _run_threads(n_threads: int, work) -> float:
    threads = [
        threading.Thread(target=work, args=(tid,))
        for tid in range(n_threads)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Section 1: requests/sec vs node count
# ----------------------------------------------------------------------

def _cluster_rates(n_nodes: int, scale: dict) -> dict:
    metrics = ZipfTenants(
        n_tenants=scale["metrics"], prefix="m"
    ).names
    batch = (
        LatencyValues()
        .sample(scale["batch"], np.random.default_rng(SEED))
        .tolist()
    )
    n_ingest = scale["ingest_requests_per_thread"]
    n_query = scale["query_requests_per_thread"]
    errors: list[BaseException] = []

    with LocalCluster(n_nodes=n_nodes, seed=SEED) as cluster:

        def ingester(tid: int) -> None:
            try:
                with cluster.client(retries=2) as client:
                    for request in range(n_ingest):
                        metric = metrics[(tid + request) % len(metrics)]
                        client.ingest(metric, batch)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        ingest_s = _run_threads(scale["threads"], ingester)
        assert not errors, errors

        def querier(tid: int) -> None:
            try:
                with cluster.client(retries=2) as client:
                    for request in range(n_query):
                        metric = metrics[(tid + request) % len(metrics)]
                        if request % 2:
                            client.quantile(metric, 0.5)
                        else:
                            client.count(metric)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        query_s = _run_threads(scale["threads"], querier)
        assert not errors, errors

        # Let replication and anti-entropy drain, then hold the
        # benchmark to the same bar as the fault suite.
        cluster.run_for(5_000.0, step_ms=250.0)
        report = cluster.convergence_report()
        assert report["converged"], report["mismatches"]

        expected = scale["threads"] * n_ingest * scale["batch"]
        with cluster.client(retries=2) as client:
            total = sum(client.count(metric) for metric in metrics)
        assert total == expected, (total, expected)

    ingest_requests = scale["threads"] * n_ingest
    query_requests = scale["threads"] * n_query
    row = {
        "nodes": n_nodes,
        "ingest_requests": ingest_requests,
        "ingest_requests_per_sec": ingest_requests / ingest_s,
        "ingest_values_per_sec": expected / ingest_s,
        "query_requests": query_requests,
        "query_requests_per_sec": query_requests / query_s,
        "replicated_stores": report["stores"],
        "converged": report["converged"],
    }
    print(
        f"  nodes={n_nodes}: ingest "
        f"{row['ingest_requests_per_sec']:>8,.0f} req/s "
        f"({row['ingest_values_per_sec']:,.0f} values/s)   "
        f"query {row['query_requests_per_sec']:>8,.0f} req/s   "
        f"{report['stores']} stores converged"
    )
    return row


def bench_throughput(scale: dict) -> dict:
    return {
        str(n_nodes): _cluster_rates(n_nodes, scale)
        for n_nodes in scale["node_counts"]
    }


# ----------------------------------------------------------------------
# Section 2: failover timing on the manual clock
# ----------------------------------------------------------------------

def _tick_until(cluster: LocalCluster, predicate) -> float:
    """Tick until *predicate* holds; returns elapsed clock ms."""
    start = cluster.clock.now_ms()
    while not predicate():
        cluster.tick(advance_ms=FAILOVER_STEP_MS)
        elapsed = cluster.clock.now_ms() - start
        if elapsed > FAILOVER_DEADLINE_MS:
            raise AssertionError(
                f"predicate not reached within {FAILOVER_DEADLINE_MS} ms"
            )
    return cluster.clock.now_ms() - start


def bench_failover() -> dict:
    values = [float(value) for value in range(FAILOVER_VALUES)]
    with LocalCluster(n_nodes=3, seed=SEED) as cluster:
        acked = 0
        with cluster.client() as client:
            acked += client.ingest("m", values)
        cluster.run_for(2_000.0)
        leader = cluster.leader_of("m")
        cluster.crash(leader)
        detection_ms = _tick_until(
            cluster,
            lambda: not cluster.supervisor.view.is_alive(leader)
            and cluster.leader_of("m") != leader,
        )
        with cluster.client() as client:
            acked += client.ingest("m", values)
        cluster.restart(leader)
        catchup_ms = _tick_until(cluster, cluster.converged)
        with cluster.client() as client:
            total = client.count("m")
        assert total == acked, (total, acked)
    result = {
        "values_before_crash": FAILOVER_VALUES,
        "tick_ms": FAILOVER_STEP_MS,
        "detection_and_promotion_ms": detection_ms,
        "restart_catchup_ms": catchup_ms,
        "acked_records_preserved": acked,
    }
    print(
        f"  detection+promotion {detection_ms:,.0f} ms clock   "
        f"restart catch-up {catchup_ms:,.0f} ms clock   "
        f"{acked} acked records preserved"
    )
    return result


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def bench_cluster(output: Path | None = None, smoke: bool = False) -> dict:
    smoke = smoke or os.environ.get("REPRO_SCALE", "").lower() == "smoke"
    scale = SMOKE if smoke else FULL

    print(
        f"proxy throughput vs node count "
        f"({scale['threads']} threads x "
        f"{scale['ingest_requests_per_thread']} requests x "
        f"{scale['batch']} values)"
    )
    throughput = bench_throughput(scale)

    print("failover timing (manual clock)")
    failover = bench_failover()

    result = {
        "schema": "repro.bench_cluster/1",
        "scale": {
            "smoke": smoke,
            **{key: list(value) if isinstance(value, tuple) else value
               for key, value in scale.items()},
        },
        "throughput": throughput,
        "failover": failover,
    }
    for row in throughput.values():
        assert row["ingest_requests_per_sec"] > 0
        assert row["query_requests_per_sec"] > 0
        assert row["converged"]
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        path = write_json(result, output / "BENCH_cluster.json")
        print(f"\nwrote {path}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="directory for BENCH_cluster.json",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workload (also via REPRO_SCALE=smoke)",
    )
    args = parser.parse_args(argv)
    bench_cluster(output=args.output, smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
