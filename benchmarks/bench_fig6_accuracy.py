"""Fig 6 — accuracy of every sketch on the four data sets through the
streaming engine (event-time tumbling windows, first window discarded,
means over independent runs).

Published shapes asserted per panel:

* (a) Pareto — KLL's upper/p99 relative error blows up; DD/UDD hold
  their guarantee; REQ (HRA) excellent at the tail.
* (b) Uniform — everyone below the 1% threshold.
* (c) NYT — Moments exceeds the threshold on real-world data; DD/UDD
  hold; sampling sketches benefit from repeated values.
* (d) Power — Moments' mid-quantile error is its worst region; REQ
  best at the 0.99 quantile.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.accuracy import run_accuracy

DATASETS = ("pareto", "uniform", "nyt", "power")


@pytest.fixture(scope="module")
def results(scale):
    return {d: run_accuracy(d, scale=scale) for d in DATASETS}


@pytest.mark.parametrize("dataset", DATASETS)
def bench_fig6_accuracy(benchmark, dataset, scale, results):
    # The measured artifact is the full windowed run; re-run one
    # (cheaper single-dataset) pass under the timer and reuse the
    # module-level results for the assertions/tables.
    result = benchmark.pedantic(
        lambda: run_accuracy(dataset, ("ddsketch",), scale=scale),
        rounds=1, iterations=1,
    )
    assert result.dataset == dataset
    full = results[dataset]
    emit(full.to_table())

    grouped = full.grouped
    if dataset == "pareto":
        assert grouped["kll"]["p99"] > 2 * grouped["ddsketch"]["p99"]
        assert grouped["uddsketch"]["mid"] <= 0.0101
        assert grouped["req"]["upper"] < 0.0101
    elif dataset == "uniform":
        for sketch, groups in grouped.items():
            assert groups["mid"] < 0.011, sketch
            assert groups["upper"] < 0.011, sketch
    elif dataset == "nyt":
        worst_moments = max(grouped["moments"].values())
        assert worst_moments > 0.009
        assert grouped["uddsketch"]["mid"] <= 0.0101
    elif dataset == "power":
        # Sec 4.5.4: the bimodal shape pushes Moments' mid-quantile
        # error past the threshold; DD/UDD are unaffected.
        assert grouped["moments"]["mid"] > 0.0101
        assert grouped["ddsketch"]["upper"] <= 0.0101
        assert grouped["uddsketch"]["mid"] <= 0.0101
    benchmark.extra_info["grouped"] = grouped
