"""Fig 5a — average insertion time of a single element.

The paper pre-samples values from Pareto(1, 1) and measures the mean
per-element ``update`` cost.  The published ordering: DDSketch fastest;
Moments and KLL in the middle; ReqSketch and UDDSketch slowest (list
compaction and the map-based store respectively).  Absolute numbers are
CPython, not JVM; the ordering is the reproduced result.
"""

import pytest

from repro.core import paper_config
from repro.experiments.config import DEFAULT_SKETCHES


@pytest.mark.parametrize("sketch_name", DEFAULT_SKETCHES)
def bench_insertion(benchmark, sketch_name, speed_values):
    values = speed_values[:20_000].tolist()

    def insert_all():
        sketch = paper_config(sketch_name, dataset="pareto", seed=0)
        update = sketch.update
        for value in values:
            update(value)
        return sketch

    sketch = benchmark(insert_all)
    assert sketch.count == len(values)
    benchmark.extra_info["per_element_ns"] = (
        benchmark.stats["mean"] / len(values) * 1e9
    )


@pytest.mark.parametrize("sketch_name", DEFAULT_SKETCHES)
def bench_insertion_batched(benchmark, sketch_name, speed_values):
    """Companion measurement: the vectorised ingestion path (not in the
    paper; quantifies what numpy batching buys each sketch)."""

    def insert_batch():
        sketch = paper_config(sketch_name, dataset="pareto", seed=0)
        sketch.update_batch(speed_values)
        return sketch

    sketch = benchmark(insert_batch)
    assert sketch.count == speed_values.size
    benchmark.extra_info["per_element_ns"] = (
        benchmark.stats["mean"] / speed_values.size * 1e9
    )
