"""Sec 4.7 — sensitivity of accuracy to the window size.

The accuracy runs are repeated with three window sizes.  Published
shape: synthetic data sets are insensitive; DD/UDD consistent
everywhere; on real-world data Moments improves with larger windows
(the observed shape smooths out) while the sampling sketches drift
slightly worse (more compactions).
"""

from benchmarks.conftest import emit
from repro.experiments.window_size import run_window_size

DATASETS = ("uniform", "power")


def bench_sec47_window_size(benchmark, scale):
    # Window sizes scale with the configured window so the smoke/quick
    # scales sweep a proportional range (the paper uses 5/10/20 s).
    base_s = scale.window_size_ms / 1000.0
    sizes = (base_s / 4, base_s / 2, base_s)
    result = benchmark.pedantic(
        lambda: run_window_size(
            datasets=DATASETS, scale=scale, window_sizes_s=sizes
        ),
        rounds=1, iterations=1,
    )
    emit(result.to_table())

    for dataset in DATASETS:
        # DD/UDD: consistent across window sizes.
        assert abs(result.trend(dataset, "ddsketch")) < 0.01, dataset
        assert abs(result.trend(dataset, "uddsketch")) < 0.01, dataset
    # Moments on the bimodal real-world stand-in: larger windows do
    # not hurt (the paper reports an improvement).
    assert result.trend("power", "moments") < 0.01
    benchmark.extra_info["trends"] = {
        d: {s: result.trend(d, s) for s in ("moments", "kll", "ddsketch")}
        for d in DATASETS
    }
