PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test-fast test-all bench-parallel

# Tier-1 gate: everything except tests marked `slow` (pyproject's
# addopts already applies -m 'not slow').
test-fast:
	$(PYTEST) -x -q

# Full suite, soak tests included (-m on the command line overrides
# the addopts filter).
test-all:
	$(PYTEST) -q -m "slow or not slow"

bench-parallel:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_parallel_scaling.py
