PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: help test-fast test-all lint analysis typecheck bench-parallel \
	serve bench-service obs-bench durability-bench crash-test \
	bench-ingest race-check cluster-demo cluster-test bench-cluster

help:
	@echo "Targets:"
	@echo "  test-fast      tier-1 gate: pytest minus tests marked 'slow'"
	@echo "  test-all       full suite, soak tests included"
	@echo "  lint           static analysis: repro.analysis AST rules + strict mypy"
	@echo "  analysis       just the AST rules (python -m repro.analysis --check)"
	@echo "  typecheck      just mypy --strict over repro.core and repro.parallel"
	@echo "  bench-parallel parallel-scaling micro-benchmark"
	@echo "  serve          run the quantile service TCP server (port 7107)"
	@echo "  bench-service  quantile-service ingest/query/overload benchmark"
	@echo "  bench-ingest   batch-ingestion throughput benchmark (>=5x geomean gate)"
	@echo "  obs-bench      observability overhead benchmark (<5% disabled gate)"
	@echo "  durability-bench WAL/checkpoint cost benchmark (<5% durability-off gate)"
	@echo "  crash-test     crash-consistency sweep + SIGKILL process smoke"
	@echo "  race-check     concurrency gate: LCK/RACE static rules + runtime sanitizer tests"
	@echo "  cluster-demo   3-node replicated cluster demo (ingest/failover/convergence)"
	@echo "  cluster-test   cluster fault suite: partitions, crashes, convergence"
	@echo "  bench-cluster  cluster requests/sec vs node count + failover timing"
	@echo "  traffic        scenario catalog + determinism gate (each scenario twice)"
	@echo "  traffic-test   workload suite: generators, continuous queries, scenarios"
	@echo "  bench-traffic  per-scenario throughput/shed/p99 benchmark (BENCH_traffic.json)"

# Tier-1 gate: everything except tests marked `slow` (pyproject's
# addopts already applies -m 'not slow').
test-fast:
	$(PYTEST) -x -q

# Full suite, soak tests included (-m on the command line overrides
# the addopts filter).
test-all:
	$(PYTEST) -q -m "slow or not slow"

# The CI lint gate: custom AST rules, then the strict typing gate.
lint: analysis typecheck

analysis:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --check src/repro

# mypy is an optional dev dependency; environments without it (the
# hermetic test container) skip the typing half of the gate loudly
# instead of failing. Configuration lives in pyproject.toml.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict src/repro/core src/repro/parallel; \
	else \
		echo "mypy not installed - skipping strict typing gate"; \
	fi

bench-parallel:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_parallel_scaling.py

# Foreground quantile service on the default port; override with e.g.
# `make serve SERVE_ARGS="--port 9000 --sketch ddsketch"`.
serve:
	PYTHONPATH=src $(PYTHON) -m repro.service serve $(SERVE_ARGS)

bench-service:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_service.py

# The batch-ingestion gate behind BENCH_ingest.json: scalar-vs-batch
# for every registry sketch (>=5x geomean at full scale), buffered
# concurrent ingestion, and multi-worker TCP server scaling. Add
# INGEST_BENCH_ARGS="--smoke --output DIR" for the CI-sized run.
bench-ingest:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_ingest.py $(INGEST_BENCH_ARGS)

# Proves the observability layer's cost contract: the instrumented
# ingest loop with telemetry disabled stays within 5% of an
# uninstrumented baseline. Writes snapshot exports with --output.
obs-bench:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_obs_overhead.py $(OBS_BENCH_ARGS)

# Proves the durability layer's cost contract: the server-shaped ingest
# loop with durability off stays within 5% of the raw registry loop.
# Also reports per-FlushPolicy WAL costs and checkpoint/recovery
# latency. Writes durability_bench.json with --output.
durability-bench:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_durability.py $(DURABILITY_BENCH_ARGS)

# The crash-consistency gate: the in-process fault sweep (a simulated
# crash at every WAL record boundary and mid-checkpoint) plus the
# SIGKILL-a-real-process smoke test.
crash-test:
	$(PYTEST) -q tests/durability -m "slow or not slow"

# The replicated cluster (DESIGN §14). `cluster-demo` runs the
# scripted 3-node ingest/failover/convergence walkthrough; add e.g.
# CLUSTER_ARGS="--nodes 5" to vary it. For a long-running foreground
# cluster use `python -m repro.cluster --serve` directly.
cluster-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cluster --demo $(CLUSTER_ARGS)

cluster-test:
	$(PYTEST) -q tests/cluster

# Requests/sec vs node count through the routing proxy, plus
# deterministic failover timing on the manual clock. Writes
# BENCH_cluster.json with --output; add CLUSTER_BENCH_ARGS="--smoke
# --output DIR" for the CI-sized run.
bench-cluster:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_cluster.py $(CLUSTER_BENCH_ARGS)

# The scenario catalog with its determinism gate: every scenario runs
# twice on one seed and the SLO reports must match byte-for-byte.
# TRAFFIC_ARGS="--scenario flash_crowd" (etc.) narrows the run.
traffic:
	PYTHONPATH=src $(PYTHON) -m repro.workload --scenario all --fast \
		$(TRAFFIC_ARGS)

traffic-test:
	$(PYTEST) -q tests/workload tests/data/test_traffic.py \
		tests/service/test_continuous.py

# Per-scenario wall throughput, shed rate and p99 ingest/query spans
# (wall telemetry on the same deterministic traffic). Writes
# BENCH_traffic.json with TRAFFIC_BENCH_ARGS="--output DIR".
bench-traffic:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_traffic.py \
		$(TRAFFIC_BENCH_ARGS)

# The concurrency gate (DESIGN §13): the LCK/RACE static family over
# the whole tree, then the runtime sanitizer suite — its own unit
# tests, the live corpus witnesses, the <10% overhead budget, and the
# sanitizer-wrapped buffered/service/durability concurrency tests.
race-check:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --check \
		--select LCK,RACE src/repro
	$(PYTEST) -q tests/sanitizer -m "slow or not slow"
	$(PYTEST) -q tests/parallel/test_buffered.py \
		tests/service/test_concurrency.py \
		tests/durability/test_crash_sweep.py
