"""The repo's own source must stay lint-clean.

This is the regression half of the static-analysis gate: the corpus
tests prove each rule *can* fire; this test proves none of them fire
on ``src/repro``, so a PR reintroducing an unseeded RNG, a float
equality, or an unguarded shared-state write fails the tier-1 suite —
not just ``make lint``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis import active_findings, analyze_paths

SRC_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_ROOT.parent.parent


def test_src_tree_has_zero_active_findings():
    findings = active_findings(analyze_paths([SRC_ROOT]))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_src_tree_has_no_stale_suppressions():
    """Every ``# repro: noqa[...]`` in the tree must still be earning
    its keep — the NOQA001 audit runs in CI, so a fix that obsoletes a
    suppression must also delete the comment."""
    findings = active_findings(analyze_paths([SRC_ROOT], unused_noqa=True))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_lck_race_family_is_clean_on_src_tree():
    """The `make race-check` static gate: no deadlock cycles, no
    blocking-under-lock, no lockset races anywhere in the tree."""
    from repro.analysis.rules import select_rules

    findings = active_findings(analyze_paths(
        [SRC_ROOT], rules=select_rules(select=("LCK", "RACE"))
    ))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_check_gate_passes_on_src_tree():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_ROOT.parent), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--check", str(SRC_ROOT)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=False,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stdout
