"""Suppression semantics of ``# repro: noqa[...]`` comments."""

from __future__ import annotations

from repro.analysis import active_findings, analyze_source

MODULE = "repro.core.noqa_demo"


def _findings(source: str):
    return analyze_source(source, module=MODULE)


def test_rule_scoped_noqa_suppresses_only_that_rule():
    source = "def f(x):\n    return x == 0.5  # repro: noqa[FLT001]\n"
    findings = _findings(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert findings[0].suppressed
    assert active_findings(findings) == []


def test_blanket_noqa_suppresses_every_rule():
    source = (
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:  # repro: noqa\n"
        "        pass\n"
    )
    findings = _findings(source)
    assert sorted(f.code for f in findings) == ["EXC001", "EXC002"]
    assert all(f.suppressed for f in findings)
    assert active_findings(findings) == []


def test_wrong_code_noqa_does_not_suppress():
    source = "def f(x):\n    return x == 0.5  # repro: noqa[RNG001]\n"
    findings = _findings(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert not findings[0].suppressed
    assert active_findings(findings) == findings


def test_multi_code_noqa():
    source = (
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:  # repro: noqa[EXC001,EXC002]\n"
        "        pass\n"
    )
    assert active_findings(_findings(source)) == []


def test_dur001_noqa_suppresses_in_scope_write():
    source = (
        "def dump(report, path):\n"
        "    with open(path, 'w') as handle:  # repro: noqa[DUR001]\n"
        "        handle.write(report)\n"
    )
    findings = analyze_source(source, module="repro.service.noqa_demo")
    assert [f.code for f in findings] == ["DUR001"]
    assert findings[0].suppressed
    assert active_findings(findings) == []


def test_noqa_on_a_different_line_has_no_effect():
    source = (
        "# repro: noqa[FLT001]\n"
        "def f(x):\n"
        "    return x == 0.5\n"
    )
    findings = _findings(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert not findings[0].suppressed


# ----------------------------------------------------------------------
# NOQA001: the dead-suppression audit
# ----------------------------------------------------------------------


def _audit(source: str, module: str = MODULE, **kwargs):
    return analyze_source(source, module=module, unused_noqa=True, **kwargs)


def test_unused_scoped_noqa_is_flagged():
    source = "def f(x):\n    return x + 0.5  # repro: noqa[FLT001]\n"
    findings = _audit(source)
    assert [f.code for f in findings] == ["NOQA001"]
    assert findings[0].line == 2
    assert "FLT001" in findings[0].message


def test_used_scoped_noqa_is_not_flagged():
    source = "def f(x):\n    return x == 0.5  # repro: noqa[FLT001]\n"
    findings = _audit(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert findings[0].suppressed


def test_unused_blanket_noqa_is_flagged():
    source = "def f(x):\n    return x + 1  # repro: noqa\n"
    findings = _audit(source)
    assert [f.code for f in findings] == ["NOQA001"]
    assert "blanket" in findings[0].message


def test_unknown_code_in_noqa_is_always_flagged():
    source = "def f(x):\n    return x == 0.5  # repro: noqa[ZZZ999]\n"
    findings = _audit(source)
    assert sorted((f.code, f.suppressed) for f in findings) == [
        ("FLT001", False),
        ("NOQA001", False),
    ]
    audit = next(f for f in findings if f.code == "NOQA001")
    assert "no known rule" in audit.message


def test_out_of_scope_code_is_not_reported_unused():
    """A DUR001 noqa in a module DUR001 never runs on stays silent:
    the audit only judges codes whose rule analysed that module."""
    source = (
        "def dump(report, path):\n"
        "    with open(path, 'w') as handle:  # repro: noqa[DUR001]\n"
        "        handle.write(report)\n"
    )
    # repro.core is outside DUR001's scopes, so the suppression is
    # vacuous there -- but deliberately not judged.
    findings = analyze_source(
        source, module="repro.core.noqa_demo", unused_noqa=True
    )
    assert [f.code for f in findings] == []


def test_partial_rule_run_does_not_judge_blankets():
    """`--select FLT` must not call a blanket noqa unused: rules that
    might legitimately use it did not run."""
    from repro.analysis.rules import select_rules

    source = "def f(x):\n    return x + 1  # repro: noqa\n"
    findings = analyze_source(
        source,
        module=MODULE,
        rules=select_rules(select=("FLT001",)),
        unused_noqa=True,
    )
    assert findings == []


def test_audit_off_by_default_in_api():
    source = "def f(x):\n    return x + 0.5  # repro: noqa[FLT001]\n"
    assert analyze_source(source, module=MODULE) == []
