"""Suppression semantics of ``# repro: noqa[...]`` comments."""

from __future__ import annotations

from repro.analysis import active_findings, analyze_source

MODULE = "repro.core.noqa_demo"


def _findings(source: str):
    return analyze_source(source, module=MODULE)


def test_rule_scoped_noqa_suppresses_only_that_rule():
    source = "def f(x):\n    return x == 0.5  # repro: noqa[FLT001]\n"
    findings = _findings(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert findings[0].suppressed
    assert active_findings(findings) == []


def test_blanket_noqa_suppresses_every_rule():
    source = (
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:  # repro: noqa\n"
        "        pass\n"
    )
    findings = _findings(source)
    assert sorted(f.code for f in findings) == ["EXC001", "EXC002"]
    assert all(f.suppressed for f in findings)
    assert active_findings(findings) == []


def test_wrong_code_noqa_does_not_suppress():
    source = "def f(x):\n    return x == 0.5  # repro: noqa[RNG001]\n"
    findings = _findings(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert not findings[0].suppressed
    assert active_findings(findings) == findings


def test_multi_code_noqa():
    source = (
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:  # repro: noqa[EXC001,EXC002]\n"
        "        pass\n"
    )
    assert active_findings(_findings(source)) == []


def test_dur001_noqa_suppresses_in_scope_write():
    source = (
        "def dump(report, path):\n"
        "    with open(path, 'w') as handle:  # repro: noqa[DUR001]\n"
        "        handle.write(report)\n"
    )
    findings = analyze_source(source, module="repro.service.noqa_demo")
    assert [f.code for f in findings] == ["DUR001"]
    assert findings[0].suppressed
    assert active_findings(findings) == []


def test_noqa_on_a_different_line_has_no_effect():
    source = (
        "# repro: noqa[FLT001]\n"
        "def f(x):\n"
        "    return x == 0.5\n"
    )
    findings = _findings(source)
    assert [f.code for f in findings] == ["FLT001"]
    assert not findings[0].suppressed
