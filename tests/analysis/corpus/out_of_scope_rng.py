# module: repro.experiments.scratch
"""RNG violations outside repro.core / repro.parallel do not fire."""
import numpy as np


def sample(n):
    return np.random.default_rng().normal(size=n)
