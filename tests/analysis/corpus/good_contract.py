# module: repro.core.goodsketch
"""Known-good: full interface, delegated bookkeeping, abstract base."""
import abc

from repro.core.base import QuantileSketch


class GoodSketch(QuantileSketch):
    name = "good"

    def update(self, value):
        self._observe(value)

    def merge(self, other):
        self._merge_bookkeeping(other)

    def quantile(self, q):
        return 0.0

    def size_bytes(self):
        return 0


class DelegatingSketch(QuantileSketch):
    """update reaches _observe_batch through update_batch (DCS-style)."""

    name = "delegating"

    def update(self, value):
        self.update_batch([value])

    def update_batch(self, values):
        self._observe_batch(values)

    def merge(self, other):
        self._merge_bookkeeping(other)

    def quantile(self, q):
        return 0.0

    def size_bytes(self):
        return 0


class AbstractVariant(QuantileSketch):
    """Declares abstract members, so the concrete-class rules skip it."""

    @abc.abstractmethod
    def update(self, value):
        ...
