# module: repro.core.goodfloat
"""Known-good: orderings, tolerances, integer equality, justified noqa."""
import math


def compare(x, y, n, mode):
    a = x <= 0.5
    b = math.isclose(x, y, rel_tol=1e-9)
    c = n == 3
    d = mode == "dense"
    e = x == 0.0  # repro: noqa[FLT001] exact IEEE zero sentinel
    return a, b, c, d, e
