# module: repro.parallel.badlock
"""Known-bad: shared-state writes outside any lock context."""
import threading


class RacyAccumulator:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0

    def add(self, value):
        self._count += 1  # expect: LCK001
        self._total = self._total + value  # expect: LCK001

    def reset(self):
        self._count, self._total = 0, 0.0  # expect: LCK001,LCK001

    def add_guarded_then_leak(self, value):
        with self._lock:
            self._total += value
        self._dirty = True  # expect: LCK001
