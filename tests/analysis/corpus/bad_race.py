# module: repro.obs.badrace
"""Unguarded shared-counter race witness for RACE001.

``add`` is spawned as a thread target in a loop, so many instances of
it run at once, and its ``self.total += n`` holds no lock — the
read-modify-write tears under contention and increments are lost.
``observe_peak`` *does* lock, but a lock only protects what every
accessor agrees to take, and ``add`` never takes it.

This module is runnable on purpose: the sanitizer tests execute it
with ``total`` under a watchpoint and threads really racing, and the
runtime monitor must catch live what the static rule reports here.
"""

import threading


class SharedCounter:
    def __init__(self) -> None:
        self._meter_lock = threading.Lock()
        self.total = 0
        self.peak = 0

    def add(self, n: int) -> None:
        for _ in range(n):
            self.total += 1  # expect: RACE001

    def observe_peak(self) -> None:
        with self._meter_lock:
            if self.total > self.peak:
                self.peak = self.total

    def run(self, workers: int, n: int) -> None:
        threads = [
            threading.Thread(target=self.add, args=(n,))
            for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
