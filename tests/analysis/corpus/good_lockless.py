# module: repro.service.goodcursor
"""Lockless classes are single-threaded by design: LCK001 exempt.

Also pins the lock-name heuristic: ``_clock_skew`` mentions "clock",
which contains "lock", and must *not* make this class lock-owning.
"""


class SnapshotCursor:
    def __init__(self) -> None:
        self._pos = 0
        self._clock_skew = 0.0

    def advance(self, n: int) -> int:
        self._pos += n
        self._clock_skew = 0.5
        return self._pos
