# module: repro.parallel.baddead
"""Planted ABBA deadlock witnesses for LCK002.

``AbbaPair`` nests the same two locks in opposite orders lexically;
``NestedPair`` closes its cycle through a method call, so only the
interprocedural lockset dataflow can see it.  Both classes are real,
runnable code: the sanitizer tests execute this module under
instrumented locks and must observe the same cycles at runtime that
the static rule reports here.

The methods take both locks back-to-back rather than truly
concurrently, so *running* them single-threaded never deadlocks —
the bug is the ordering, which is exactly what a lock-order graph
(static or runtime) catches before the unlucky schedule happens.
"""

import threading


class AbbaPair:
    """Transfers between two balances, locking in argument order."""

    def __init__(self) -> None:
        self.lock_a = threading.Lock()
        self.lock_b = threading.Lock()
        self.balance_a = 100
        self.balance_b = 100

    def a_then_b(self, amount: int) -> None:
        with self.lock_a:
            with self.lock_b:  # expect: LCK002
                self.balance_a -= amount
                self.balance_b += amount

    def b_then_a(self, amount: int) -> None:
        with self.lock_b:
            with self.lock_a:  # expect: LCK002
                self.balance_b -= amount
                self.balance_a += amount


class NestedPair:
    """The same ABBA shape, but one arm hides behind a call."""

    def __init__(self) -> None:
        self.outer_lock = threading.Lock()
        self.inner_lock = threading.Lock()
        self.counter = 0

    def bump(self) -> None:
        with self.outer_lock:
            self._bump_inner()

    def _bump_inner(self) -> None:
        # Called with outer_lock held: inner follows outer here...
        with self.inner_lock:  # expect: LCK002
            self.counter += 1

    def sweep(self) -> None:
        # ...but outer follows inner here, closing the cycle.
        with self.inner_lock:
            with self.outer_lock:  # expect: LCK002
                self.counter = 0
