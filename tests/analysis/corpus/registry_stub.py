# module: repro.core.registry
"""Synthetic registry joined to corpus projects for SK003 checks."""

SKETCH_CLASSES = {
    "good": GoodSketch,  # noqa: F821 - AST-only stub, never imported
    "delegating": DelegatingSketch,  # noqa: F821
}
