# module: repro.parallel.goodconc
"""Known-good concurrency: every rule the bad twins trip stays silent.

* locks nest strictly parent -> child everywhere (no LCK002 cycle);
* queue waits carry timeouts and sleeps happen outside locks (LCK003);
* the one attribute thread workers write is guarded by the same lock
  on every path (RACE001);
* ``_reset_locked`` follows the caller-holds-the-lock naming
  convention LCK001 exempts.
"""

import queue
import threading


class OrderedPair:
    def __init__(self) -> None:
        self.parent_lock = threading.Lock()
        self.child_lock = threading.Lock()
        self._queue: "queue.Queue[float]" = queue.Queue()
        self.applied = 0

    def ingest(self, value: float) -> None:
        with self.parent_lock:
            with self.child_lock:
                self.applied += 1
        self._queue.put(value)

    def drain(self) -> float:
        value = self._queue.get(timeout=0.5)
        with self.parent_lock:
            with self.child_lock:
                self.applied += 1
        return value

    def worker(self) -> None:
        with self.parent_lock:
            self.applied += 1

    def spawn(self, n: int) -> list:
        threads = [
            threading.Thread(target=self.worker) for _ in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        return threads

    def reset(self) -> None:
        with self.parent_lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        self.applied = 0
