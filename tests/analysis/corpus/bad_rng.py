# module: repro.core.badrng
"""Known-bad: every RNG discipline violation in one file."""
import random

import numpy as np


def sample(n):
    rng = np.random.default_rng()  # expect: RNG001
    entropy = np.random.default_rng(None)  # expect: RNG001
    legacy = np.random.uniform(0.0, 1.0, size=n)  # expect: RNG002
    np.random.shuffle(legacy)  # expect: RNG002
    coin = random.random()  # expect: RNG003
    pick = random.choice([1, 2, 3])  # expect: RNG003
    return rng, entropy, legacy, coin, pick
