# module: repro.service.badblocking
"""Blocking-under-lock witnesses for LCK003.

Each method parks the calling thread indefinitely while holding the
instance lock: every other thread that needs the lock then stalls
behind a wait that may never end.  The good twin
(``good_concurrency.py``) does the same work with timeouts or with
the lock released first.
"""

import queue
import threading
import time


class BlockingDrain:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue: "queue.Queue[float]" = queue.Queue()
        self.drained = 0.0

    def drain_one(self) -> float:
        with self._lock:
            value = self._queue.get()  # expect: LCK003
            self.drained += value
            return value

    def wait_for_worker(self, worker: threading.Thread) -> None:
        with self._lock:
            worker.join()  # expect: LCK003

    def nap_under_lock(self) -> None:
        with self._lock:
            time.sleep(0.01)  # expect: LCK003
