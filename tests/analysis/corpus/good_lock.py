# module: repro.parallel.goodlock
"""Known-good: every shared write guarded, construction exempt."""
import threading


class GuardedAccumulator:
    def __init__(self):
        self._lock = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in range(4)]
        self._count = 0
        self._totals = [0.0] * 4

    def add(self, value):
        with self._lock:
            self._count += 1

    def add_to_shard(self, shard, value):
        with self._shard_locks[shard]:
            self._totals[shard] += value

    def reset(self):
        with self._lock:
            self._count, self._dirty = 0, False

    def local_work(self, values):
        total = 0.0
        for value in values:
            total += value
        return total


def module_level_helper(state):
    state.count = 0
    return state
