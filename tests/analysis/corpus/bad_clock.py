# module: repro.service.badhandler
"""Known-bad: instrumented code reading the wall clock directly."""
import time
from time import monotonic, perf_counter as pc


def handle_request(payload):
    started = time.time()  # expect: OBS001
    result = len(payload)
    elapsed_ms = (time.time() - started) * 1000.0  # expect: OBS001
    return result, elapsed_ms


def measure_span():
    start = pc()  # expect: OBS001
    stop = monotonic()  # expect: OBS001
    nanos = time.perf_counter_ns()  # expect: OBS001
    return start, stop, nanos


def polite_wait():
    time.sleep(0.01)  # sleeping is not a clock *read*; stays legal
    return True
