# module: repro.core.badsketch
"""Known-bad: incomplete interface, missing bookkeeping, unregistered."""
from repro.core.base import QuantileSketch


class BadSketch(QuantileSketch):  # expect: SK001,SK003
    """Missing merge/size_bytes; update never observes; unregistered."""

    name = "bad"

    def update(self, value):  # expect: SK002
        self._items.append(value)

    def update_batch(self, values):
        for value in values:  # expect: SK004
            self.update(value)

    def quantile(self, q):
        return 0.0
