# module: repro.streaming.goodexc
"""Known-good: named exceptions with real handling."""
import contextlib


def handled(fn):
    try:
        return fn()
    except ValueError:
        return None


def reraised(fn):
    try:
        return fn()
    except KeyError as exc:
        raise RuntimeError("lookup failed") from exc


def best_effort(fn):
    with contextlib.suppress(OSError):
        fn()
