# module: repro.service.clock
"""Known-good: the clock wrapper module itself is exempt from OBS001."""
import time


class SystemClock:
    def now_ms(self):
        return time.time() * 1000.0


class MonotonicClock:
    def now_ms(self):
        return time.perf_counter() * 1000.0
