# module: repro.streaming.badexc
"""Known-bad: bare excepts and silent swallows."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # expect: EXC001,EXC002
        pass


def swallow_specific(fn):
    try:
        return fn()
    except ValueError:  # expect: EXC002
        ...


def bare_with_fallback(fn):
    try:
        return fn()
    except:  # expect: EXC001
        return None
