# module: repro.core.goodrng
"""Known-good: seeded generators threaded through parameters."""
import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def make_rng_keyword(seed=0):
    return np.random.default_rng(seed=seed)


def spawn(seed):
    sequence = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.PCG64(sequence))
