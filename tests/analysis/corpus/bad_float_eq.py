# module: repro.core.badfloat
"""Known-bad: exact equality on float expressions."""
import math

import numpy as np


def compare(x, y, values):
    a = x == 0.5  # expect: FLT001
    b = float(x) != y  # expect: FLT001
    c = x == math.inf  # expect: FLT001
    d = y != np.nan  # expect: FLT001
    e = -0.0 == x  # expect: FLT001
    f = 0.1 <= x == 0.2  # expect: FLT001
    return a, b, c, d, e, f
