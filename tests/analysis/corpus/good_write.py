# module: repro.experiments.goodexport
"""Known-good: publication through the durability layer's atomic path."""
import json

from repro.durability.atomicio import atomic_write_bytes, atomic_write_text


def dump_report(report, path):
    atomic_write_text(path, json.dumps(report, sort_keys=True) + "\n")


def dump_blob(blob, path):
    atomic_write_bytes(path, blob, durable=False)


def read_report(path):
    # Read modes never truncate; they stay outside the rule.
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def read_binary(path):
    with open(path, "rb") as handle:
        return handle.read()
