# module: repro.experiments.badexport
"""Known-bad: result files published with truncate-in-place writes."""
import json
from pathlib import Path


def dump_report(report, path):
    with open(path, "w") as handle:  # expect: DUR001
        json.dump(report, handle)


def dump_blob(blob, path):
    with open(path, "wb") as handle:  # expect: DUR001
        handle.write(blob)


def dump_keyword_mode(report, path):
    with open(path, mode="w", encoding="utf-8") as handle:  # expect: DUR001
        handle.write(report)


def append_log(line, path):
    # Appending is still a direct mutation of a published file.
    with open(path, "a") as handle:  # expect: DUR001
        handle.write(line + "\n")


def dump_via_pathlib(report, path):
    with Path(path).open("w") as handle:  # expect: DUR001
        handle.write(report)


def suppressed_writer(report, path):
    # A deliberate, audited exception stays visible in --json output.
    with open(path, "w") as handle:  # repro: noqa[DUR001]
        handle.write(report)


def read_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
