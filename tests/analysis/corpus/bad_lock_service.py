# module: repro.service.badlifecycle
"""LCK001 now covers repro.service: lifecycle writes need the lock."""

import threading


class Lifecycle:
    def __init__(self) -> None:
        self._lifecycle_lock = threading.Lock()
        self._running = False

    def start(self) -> None:
        self._running = True  # expect: LCK001

    def stop(self) -> None:
        with self._lifecycle_lock:
            self._running = False
