"""CLI behaviour of ``python -m repro.analysis``: output modes,
selection, exit codes, and module-name inference from on-disk layout."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import collect_paths, main
from repro.errors import AnalysisError

BAD_SKETCH_DIR_SOURCE = (
    "import numpy as np\n"
    "\n"
    "def sample():\n"
    "    return np.random.default_rng()\n"
)


@pytest.fixture()
def bad_tree(tmp_path):
    """A fake `repro/core` tree with one RNG001 violation."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_SKETCH_DIR_SOURCE)
    return tmp_path


def test_check_exits_nonzero_on_findings(bad_tree, capsys):
    code = main(["--check", str(bad_tree)])
    assert code == 1
    out = capsys.readouterr().out
    assert "RNG001" in out
    assert "1 finding(s)" in out


def test_report_mode_exits_zero_even_with_findings(bad_tree, capsys):
    assert main([str(bad_tree)]) == 0
    assert "RNG001" in capsys.readouterr().out


def test_check_exits_zero_on_clean_tree(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("def f(seed):\n    return seed\n")
    assert main(["--check", str(tmp_path)]) == 0


def test_json_output(bad_tree, capsys):
    assert main(["--json", str(bad_tree)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"] == {"active": 1, "suppressed": 0}
    (finding,) = payload["findings"]
    assert finding["code"] == "RNG001"
    assert finding["path"].endswith("bad.py")
    assert finding["line"] == 4


def test_select_and_ignore(bad_tree, capsys):
    assert main(["--check", "--select", "FLT001", str(bad_tree)]) == 0
    assert main(["--check", "--ignore", "RNG001", str(bad_tree)]) == 0
    assert main(["--check", "--select", "RNG001", str(bad_tree)]) == 1
    capsys.readouterr()


def test_unknown_rule_code_is_a_usage_error(bad_tree, capsys):
    assert main(["--select", "NOPE999", str(bad_tree)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_target_is_a_usage_error(capsys):
    assert main(["--check", "definitely/not/here"]) == 2
    assert "neither a directory" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RNG001", "FLT001", "SK001", "LCK001", "EXC001"):
        assert code in out


def test_show_suppressed(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "hush.py").write_text(
        "def f(x):\n    return x == 0.5  # repro: noqa[FLT001]\n"
    )
    assert main(["--check", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["--show-suppressed", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "(suppressed)" in out and "1 suppressed" in out


def test_collect_paths_deduplicates_and_sorts(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    a = pkg / "a.py"
    b = pkg / "b.py"
    a.write_text("x = 1\n")
    b.write_text("y = 2\n")
    paths = collect_paths([str(tmp_path), str(a)])
    assert paths == [a, b]
    with pytest.raises(AnalysisError):
        collect_paths([str(tmp_path / "missing.py")])


# ----------------------------------------------------------------------
# Family selection and the unused-noqa audit flag
# ----------------------------------------------------------------------

ABBA_SOURCE = (
    "import threading\n"
    "\n"
    "class Pair:\n"
    "    def __init__(self):\n"
    "        self.lock_a = threading.Lock()\n"
    "        self.lock_b = threading.Lock()\n"
    "        self.n = 0\n"
    "\n"
    "    def ab(self):\n"
    "        with self.lock_a:\n"
    "            with self.lock_b:\n"
    "                self.n += 1\n"
    "\n"
    "    def ba(self):\n"
    "        with self.lock_b:\n"
    "            with self.lock_a:\n"
    "                self.n -= 1\n"
)


@pytest.fixture()
def deadlock_tree(tmp_path):
    """A fake `repro/parallel` tree with a planted ABBA cycle."""
    pkg = tmp_path / "repro" / "parallel"
    pkg.mkdir(parents=True)
    (pkg / "pair.py").write_text(ABBA_SOURCE)
    return tmp_path


def test_prefix_select_expands_to_rule_family(deadlock_tree, capsys):
    assert main(
        ["--check", "--select", "LCK,RACE", str(deadlock_tree)]
    ) == 1
    out = capsys.readouterr().out
    assert "LCK002" in out
    # The family gate runs only LCK*/RACE*: the unseeded-RNG rule is
    # off even though the tree never imports numpy anyway.
    assert "RNG001" not in out


def test_prefix_ignore_drops_whole_family(deadlock_tree, capsys):
    assert main(["--check", "--ignore", "LCK", str(deadlock_tree)]) == 0
    capsys.readouterr()


def test_unknown_prefix_is_a_usage_error(deadlock_tree, capsys):
    assert main(["--select", "NOPE", str(deadlock_tree)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_unused_noqa_audit_is_on_by_default(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        "def f(x):\n    return x + 0.5  # repro: noqa[FLT001]\n"
    )
    assert main(["--check", str(tmp_path)]) == 1
    assert "NOQA001" in capsys.readouterr().out
    assert main(["--check", "--no-unused-noqa", str(tmp_path)]) == 0
    capsys.readouterr()


def test_json_includes_audit_findings(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        "def f(x):\n    return x + 0.5  # repro: noqa[FLT001]\n"
    )
    assert main(["--json", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in payload["findings"]] == ["NOQA001"]
