"""Corpus loader for the static-analysis self tests.

Corpus files under ``corpus/`` are plain Python sources with two
comment conventions:

* line 1: ``# module: <dotted.name>`` — the module identity the
  snippet is analysed under (rules scope on it);
* ``# expect: CODE[,CODE...]`` on any line — the rule codes that must
  fire *exactly* there.

``registry_stub.py`` is joined to every corpus project so the
cross-file registry rule resolves.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis import ModuleInfo, active_findings, analyze_source

CORPUS = Path(__file__).parent / "corpus"

_MODULE_RE = re.compile(r"#\s*module:\s*(?P<module>[\w.]+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<codes>[A-Z0-9_,\s]+)")


def load_corpus_module(filename: str) -> ModuleInfo:
    path = CORPUS / filename
    source = path.read_text(encoding="utf-8")
    match = _MODULE_RE.match(source.splitlines()[0])
    assert match is not None, f"{filename} lacks a '# module:' header"
    return ModuleInfo(
        source=source, path=str(path), module=match.group("module")
    )


def expected_hits(info: ModuleInfo) -> list[tuple[int, str]]:
    """(line, code) pairs declared by ``# expect:`` markers."""
    hits: list[tuple[int, str]] = []
    for lineno, text in enumerate(info.source.splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if match is None:
            continue
        for code in match.group("codes").split(","):
            code = code.strip()
            if code:
                hits.append((lineno, code))
    return sorted(hits)


def corpus_findings(filename: str) -> tuple[
    list[tuple[int, str]], list[tuple[int, str]]
]:
    """(actual, expected) active (line, code) pairs for one snippet."""
    info = load_corpus_module(filename)
    stub = load_corpus_module("registry_stub.py")
    findings = analyze_source(
        info.source,
        module=info.module,
        path=info.path,
        extra_modules=[stub] if info.module != stub.module else [],
    )
    actual = sorted(
        (finding.line, finding.code)
        for finding in active_findings(findings)
        if finding.path == info.path
    )
    return actual, expected_hits(info)
