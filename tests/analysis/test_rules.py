"""Corpus tests: every rule fires exactly where the known-bad snippets
say, and stays silent on the known-good ones.

The ``# expect:`` markers inside the corpus files are the single
source of truth for locations, so adding a case is editing one file.
"""

from __future__ import annotations

import pytest

from repro.analysis import ALL_RULES, RULES_BY_CODE
from tests.analysis.harness import CORPUS, corpus_findings, expected_hits, load_corpus_module

BAD_FILES = sorted(
    path.name for path in CORPUS.glob("bad_*.py")
)
GOOD_FILES = sorted(
    path.name for path in CORPUS.glob("good_*.py")
)


@pytest.mark.parametrize("filename", BAD_FILES)
def test_known_bad_snippets_hit_exactly(filename):
    actual, expected = corpus_findings(filename)
    assert expected, f"{filename} declares no # expect: markers"
    assert actual == expected


@pytest.mark.parametrize("filename", GOOD_FILES)
def test_known_good_snippets_stay_clean(filename):
    actual, expected = corpus_findings(filename)
    assert expected == []
    assert actual == []


def test_out_of_scope_module_is_exempt():
    actual, _ = corpus_findings("out_of_scope_rng.py")
    assert actual == []


def test_every_rule_has_a_known_bad_witness():
    """Each registered rule must be proven to fire by some bad snippet."""
    witnessed: set[str] = set()
    for filename in BAD_FILES:
        for _, code in expected_hits(load_corpus_module(filename)):
            witnessed.add(code)
    assert witnessed == set(RULES_BY_CODE)


def test_rule_metadata_is_complete():
    for rule in ALL_RULES:
        assert rule.code and rule.name and rule.description
        if rule.scopes is not None:
            assert all(scope.startswith("repro") for scope in rule.scopes)
