"""Unit tests for the event model."""

import numpy as np

from repro.data.streams import EventBatch
from repro.streaming.events import Event, events_from_batch


class TestEvent:
    def test_network_delay(self):
        event = Event(1.0, event_time=100.0, arrival_time=130.0)
        assert event.network_delay == 30.0

    def test_with_key(self):
        event = Event(1.0, 0.0, 0.0)
        keyed = event.with_key("sensor-1")
        assert keyed.key == "sensor-1"
        assert keyed.value == event.value
        assert event.key is None  # original untouched

    def test_frozen(self):
        event = Event(1.0, 0.0, 0.0)
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.value = 2.0


class TestEventsFromBatch:
    def test_yields_in_arrival_order(self):
        batch = EventBatch(
            values=np.asarray([1.0, 2.0, 3.0]),
            event_times=np.asarray([0.0, 10.0, 20.0]),
            arrival_times=np.asarray([50.0, 12.0, 21.0]),
        )
        events = list(events_from_batch(batch))
        assert [e.value for e in events] == [2.0, 3.0, 1.0]
        arrivals = [e.arrival_time for e in events]
        assert arrivals == sorted(arrivals)

    def test_key_applied(self):
        batch = EventBatch(
            values=np.asarray([1.0]),
            event_times=np.asarray([0.0]),
            arrival_times=np.asarray([0.0]),
        )
        [event] = events_from_batch(batch, key="k")
        assert event.key == "k"

    def test_types_are_python_floats(self):
        batch = EventBatch(
            values=np.asarray([1.5]),
            event_times=np.asarray([2.0]),
            arrival_times=np.asarray([3.0]),
        )
        [event] = events_from_batch(batch)
        assert isinstance(event.value, float)
        assert isinstance(event.event_time, float)
