"""Tests for parallel window execution and pane-sliced sliding windows."""

import numpy as np
import pytest

from repro.core import DDSketch, MomentsSketch
from repro.data.streams import EventBatch
from repro.errors import PipelineError
from repro.streaming import (
    CollectingAggregator,
    CountAggregator,
    SketchAggregator,
    SlidingEventTimeWindows,
    StreamEnvironment,
    run_sliding_batch,
    run_tumbling_batch,
)


def ordered_batch(values, spacing_ms=1.0):
    values = np.asarray(values, dtype=np.float64)
    times = np.arange(values.size, dtype=np.float64) * spacing_ms
    return EventBatch(values, times, times.copy())


class TestParallelism:
    def test_counts_identical_to_serial(self, rng):
        batch = ordered_batch(rng.uniform(0, 100, 5_000))
        serial = run_tumbling_batch(batch, 1_000.0, CountAggregator())
        parallel = run_tumbling_batch(
            batch, 1_000.0, CountAggregator(), parallelism=4
        )
        assert [r.result for r in serial.results] == (
            [r.result for r in parallel.results]
        )

    def test_ddsketch_results_identical(self, rng):
        # DDSketch is order-insensitive and merge-exact, so parallel
        # execution must reproduce the serial result bit for bit.
        batch = ordered_batch(rng.uniform(1, 100, 5_000))
        agg = SketchAggregator(DDSketch, quantiles=(0.5, 0.99))
        serial = run_tumbling_batch(batch, 1_000.0, agg)
        parallel = run_tumbling_batch(batch, 1_000.0, agg, parallelism=8)
        for a, b in zip(serial.results, parallel.results):
            assert a.result == b.result

    def test_moments_results_identical(self, rng):
        batch = ordered_batch(rng.uniform(1, 100, 5_000))
        agg = SketchAggregator(
            lambda: MomentsSketch(num_moments=8), quantiles=(0.5,)
        )
        serial = run_tumbling_batch(batch, 1_000.0, agg)
        parallel = run_tumbling_batch(batch, 1_000.0, agg, parallelism=3)
        for a, b in zip(serial.results, parallel.results):
            assert a.result[0.5] == pytest.approx(
                b.result[0.5], rel=1e-9
            )

    def test_rejects_bad_parallelism(self, rng):
        batch = ordered_batch(rng.uniform(0, 10, 100))
        with pytest.raises(PipelineError):
            run_tumbling_batch(
                batch, 10.0, CountAggregator(), parallelism=0
            )


class TestSlidingPanes:
    def test_matches_general_sliding_path_in_order(self, rng):
        batch = ordered_batch(rng.uniform(0, 100, 3_000))
        env = StreamEnvironment()
        general = (
            env.from_batch(batch)
            .window(SlidingEventTimeWindows(1_000.0, 250.0))
            .aggregate(CollectingAggregator())
        )
        sliced = run_sliding_batch(
            batch, 1_000.0, 250.0, CollectingAggregator()
        )
        general_map = {
            r.window: r.result.tolist() for r in general.results
        }
        sliced_map = {
            r.window: r.result.tolist() for r in sliced.results
        }
        assert general_map == sliced_map

    def test_each_window_covers_size_worth_of_events(self, rng):
        batch = ordered_batch(np.ones(4_000))
        report = run_sliding_batch(
            batch, 1_000.0, 500.0, CountAggregator()
        )
        interior = [
            r for r in report.results
            if 0 <= r.window.start and r.window.end <= 4_000
        ]
        assert interior
        assert all(r.result == 1_000 for r in interior)

    def test_slide_equal_size_matches_tumbling(self, rng):
        batch = ordered_batch(rng.uniform(0, 10, 2_000))
        tumbling = run_tumbling_batch(
            batch, 500.0, CollectingAggregator()
        )
        sliding = run_sliding_batch(
            batch, 500.0, 500.0, CollectingAggregator()
        )
        assert [r.window for r in tumbling.results] == (
            [r.window for r in sliding.results]
        )
        for a, b in zip(tumbling.results, sliding.results):
            assert a.result.tolist() == b.result.tolist()

    def test_panes_not_mutated_by_window_merges(self, rng):
        # Each pane feeds several windows; merging must not corrupt it.
        batch = ordered_batch(rng.uniform(1, 100, 2_000))
        agg = SketchAggregator(DDSketch, quantiles=(0.5,))
        report = run_sliding_batch(batch, 1_000.0, 250.0, agg)
        # Windows sharing panes must be internally consistent: the
        # event counts of overlapping windows differ by at most a pane.
        counts = [r.event_count for r in report.results]
        interior = counts[4:-4]
        assert all(c == 1_000 for c in interior)

    def test_late_events_dropped_against_pane(self):
        values = np.asarray([1.0, 2.0, 3.0])
        event_times = np.asarray([0.0, 2_000.0, 100.0])
        arrival = np.asarray([0.0, 1.0, 2.0])
        batch = EventBatch(values, event_times, arrival)
        report = run_sliding_batch(
            batch, 1_000.0, 500.0, CountAggregator()
        )
        assert report.dropped_late == 1

    def test_validation(self, rng):
        batch = ordered_batch(rng.uniform(0, 10, 10))
        with pytest.raises(PipelineError):
            run_sliding_batch(batch, 1_000.0, 300.0, CountAggregator())
        with pytest.raises(PipelineError):
            run_sliding_batch(batch, 0.0, 100.0, CountAggregator())

    def test_empty_batch(self):
        batch = EventBatch(np.zeros(0), np.zeros(0), np.zeros(0))
        report = run_sliding_batch(
            batch, 1_000.0, 500.0, CountAggregator()
        )
        assert report.results == []
