"""Unit tests for stream sources."""

import numpy as np
import pytest

from repro.data.distributions import Uniform
from repro.errors import InvalidValueError
from repro.streaming.sources import DistributionSource, delayed_source


class TestDistributionSource:
    def test_rate_controls_event_count(self, rng):
        source = DistributionSource(Uniform(0, 1), rate_per_sec=1_000)
        batch = source.batch(2_000.0, rng)
        assert len(batch) == 2_000

    def test_event_times_evenly_spaced(self, rng):
        source = DistributionSource(Uniform(0, 1), rate_per_sec=100)
        batch = source.batch(1_000.0, rng)
        spacing = np.diff(batch.event_times)
        assert np.allclose(spacing, 10.0)

    def test_ideal_network_has_zero_delay(self, rng):
        source = DistributionSource(Uniform(0, 1), rate_per_sec=100)
        batch = source.batch(1_000.0, rng)
        assert np.array_equal(batch.event_times, batch.arrival_times)

    def test_start_time_offset(self, rng):
        source = DistributionSource(Uniform(0, 1), rate_per_sec=100)
        batch = source.batch(100.0, rng, start_time_ms=5_000.0)
        assert batch.event_times[0] == 5_000.0

    def test_rejects_bad_rate(self):
        with pytest.raises(InvalidValueError):
            DistributionSource(Uniform(0, 1), rate_per_sec=0)


class TestDelayedSource:
    def test_delays_are_exponential_with_given_mean(self, rng):
        source = delayed_source(
            Uniform(0, 1), rate_per_sec=10_000, delay_mean_ms=150.0
        )
        batch = source.batch(10_000.0, rng)
        delays = batch.arrival_times - batch.event_times
        assert (delays >= 0).all()
        assert delays.mean() == pytest.approx(150.0, rel=0.1)

    def test_arrival_order_differs_from_event_order(self, rng):
        source = delayed_source(
            Uniform(0, 1), rate_per_sec=10_000, delay_mean_ms=150.0
        )
        batch = source.batch(1_000.0, rng)
        ordered = batch.in_arrival_order()
        assert not np.array_equal(
            ordered.event_times, batch.event_times
        )
        assert (np.diff(ordered.arrival_times) >= 0).all()
