"""Unit tests for sequence-based (count) windows."""

import numpy as np
import pytest

from repro.data.streams import EventBatch
from repro.errors import PipelineError
from repro.streaming import (
    CollectingAggregator,
    CountAggregator,
    StreamEnvironment,
)


def batch_of(values):
    values = np.asarray(values, dtype=np.float64)
    times = np.arange(values.size, dtype=np.float64)
    return EventBatch(values, times, times.copy())


class TestCountWindows:
    def test_groups_every_n_events(self):
        env = StreamEnvironment()
        report = (
            env.from_batch(batch_of(range(10)))
            .count_window(3)
            .aggregate(CollectingAggregator())
        )
        groups = [r.result.tolist() for r in report.results]
        assert groups == [
            [0.0, 1.0, 2.0], [3.0, 4.0, 5.0], [6.0, 7.0, 8.0], [9.0],
        ]

    def test_window_spans_use_sequence_coordinates(self):
        env = StreamEnvironment()
        report = (
            env.from_batch(batch_of(range(6)))
            .count_window(3)
            .aggregate(CountAggregator())
        )
        spans = [(r.window.start, r.window.end) for r in report.results]
        assert spans == [(0.0, 3.0), (3.0, 6.0)]

    def test_no_late_events(self):
        # Sequence windows are immune to event-time disorder.
        values = np.asarray([1.0, 2.0, 3.0])
        times = np.asarray([100.0, 0.0, 50.0])
        scrambled = EventBatch(values, times, np.asarray([0.0, 1.0, 2.0]))
        env = StreamEnvironment()
        report = (
            env.from_batch(scrambled)
            .count_window(2)
            .aggregate(CountAggregator())
        )
        assert report.dropped_late == 0
        assert sum(r.result for r in report.results) == 3

    def test_per_key_independent_counting(self):
        env = StreamEnvironment()
        report = (
            env.from_batch(batch_of(range(10)))
            .key_by(lambda e: int(e.value) % 2)
            .count_window(3)
            .aggregate(CollectingAggregator())
        )
        by_key: dict = {}
        for r in report.results:
            by_key.setdefault(r.key, []).append(r.result.tolist())
        assert by_key[0] == [[0.0, 2.0, 4.0], [6.0, 8.0]]
        assert by_key[1] == [[1.0, 3.0, 5.0], [7.0, 9.0]]

    def test_exact_multiple_no_empty_flush(self):
        env = StreamEnvironment()
        report = (
            env.from_batch(batch_of(range(6)))
            .count_window(3)
            .aggregate(CountAggregator())
        )
        assert len(report.results) == 2
        assert all(r.result == 3 for r in report.results)

    def test_validation(self):
        env = StreamEnvironment()
        with pytest.raises(PipelineError):
            env.from_batch(batch_of([1.0])).count_window(0)
        with pytest.raises(PipelineError):
            env.from_batch(batch_of([1.0])).count_window(2).aggregate(None)
