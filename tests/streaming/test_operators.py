"""Unit tests for window aggregate functions."""

import numpy as np
import pytest

from repro.core import DDSketch
from repro.streaming.operators import (
    CollectingAggregator,
    CountAggregator,
    ReduceAggregator,
    SketchAggregator,
)


class TestSketchAggregator:
    def test_lifecycle(self, rng):
        agg = SketchAggregator(
            lambda: DDSketch(alpha=0.01), quantiles=(0.5, 0.99)
        )
        acc = agg.create_accumulator()
        assert acc.is_empty
        for value in rng.uniform(1, 10, 100):
            acc = agg.add(acc, float(value))
        assert acc.count == 100
        result = agg.get_result(acc)
        assert set(result) == {0.5, 0.99}
        assert result[0.5] <= result[0.99]

    def test_each_accumulator_is_fresh(self):
        agg = SketchAggregator(DDSketch, quantiles=(0.5,))
        a = agg.create_accumulator()
        b = agg.create_accumulator()
        agg.add(a, 1.0)
        assert b.is_empty

    def test_add_batch_vectorised(self, rng):
        agg = SketchAggregator(DDSketch, quantiles=(0.5,))
        acc = agg.create_accumulator()
        acc = agg.add_batch(acc, rng.uniform(1, 10, 1_000))
        assert acc.count == 1_000

    def test_merge_combines(self, rng):
        agg = SketchAggregator(DDSketch, quantiles=(0.5,))
        a = agg.add_batch(agg.create_accumulator(), rng.uniform(1, 2, 500))
        b = agg.add_batch(agg.create_accumulator(), rng.uniform(5, 6, 500))
        merged = agg.merge(a, b)
        assert merged.count == 1_000


class TestCollectingAggregator:
    def test_returns_sorted_values(self):
        agg = CollectingAggregator()
        acc = agg.create_accumulator()
        acc = agg.add(acc, 3.0)
        acc = agg.add_batch(acc, np.asarray([1.0, 2.0]))
        result = agg.get_result(acc)
        assert result.tolist() == [1.0, 2.0, 3.0]

    def test_empty(self):
        agg = CollectingAggregator()
        assert agg.get_result(agg.create_accumulator()).size == 0

    def test_merge(self):
        agg = CollectingAggregator()
        a = agg.add(agg.create_accumulator(), 1.0)
        b = agg.add(agg.create_accumulator(), 2.0)
        assert agg.get_result(agg.merge(a, b)).tolist() == [1.0, 2.0]


class TestCountAggregator:
    def test_counts(self):
        agg = CountAggregator()
        acc = agg.create_accumulator()
        acc = agg.add(acc, 42.0)
        acc = agg.add_batch(acc, np.zeros(9))
        assert agg.get_result(acc) == 10

    def test_merge(self):
        agg = CountAggregator()
        assert agg.merge(3, 4) == 7


class TestReduceAggregator:
    def test_sum(self):
        agg = ReduceAggregator(lambda acc, v: acc + v, 0.0)
        acc = agg.create_accumulator()
        for value in (1.0, 2.0, 3.0):
            acc = agg.add(acc, value)
        assert agg.get_result(acc) == 6.0

    def test_max(self):
        agg = ReduceAggregator(max, float("-inf"))
        acc = agg.create_accumulator()
        for value in (1.0, 5.0, 3.0):
            acc = agg.add(acc, value)
        assert agg.get_result(acc) == 5.0

    def test_merge_unsupported(self):
        agg = ReduceAggregator(max, 0.0)
        with pytest.raises(NotImplementedError):
            agg.merge(1.0, 2.0)
