"""Tests for the continuously-queryable sliding-window sketch."""

import numpy as np
import pytest

from repro.core import DDSketch, KLLSketch
from repro.errors import EmptySketchError, InvalidValueError
from repro.streaming.windowed_sketch import SlidingWindowSketch


def make(window_ms=10_000.0, num_panes=10):
    return SlidingWindowSketch(
        lambda: DDSketch(alpha=0.01), window_ms, num_panes
    )


class TestBasics:
    def test_validation(self):
        with pytest.raises(InvalidValueError):
            SlidingWindowSketch(DDSketch, 0.0)
        with pytest.raises(InvalidValueError):
            SlidingWindowSketch(DDSketch, 100.0, num_panes=0)

    def test_empty_query_raises(self):
        with pytest.raises(EmptySketchError):
            make().quantile(0.5)

    def test_single_value(self):
        sketch = make()
        sketch.record(42.0, 0.0)
        assert sketch.quantile(0.5) == pytest.approx(42.0, rel=0.01)
        assert sketch.count == 1


class TestWindowing:
    def test_old_values_age_out(self):
        sketch = make(window_ms=10_000.0, num_panes=10)
        for t in range(10):
            sketch.record(1.0, t * 1_000.0)
        assert sketch.quantile(0.9) == pytest.approx(1.0, rel=0.02)
        # 30 seconds later, record new values: old panes evicted.
        for t in range(30, 40):
            sketch.record(100.0, t * 1_000.0)
        assert sketch.quantile(0.1) == pytest.approx(100.0, rel=0.02)
        assert sketch.count == 10

    def test_query_reflects_only_horizon(self, rng):
        sketch = make(window_ms=5_000.0, num_panes=5)
        # First 5 s: small values; next 5 s: large ones.
        for i, value in enumerate(rng.uniform(1, 2, 500)):
            sketch.record(float(value), i * 10.0)
        for i, value in enumerate(rng.uniform(100, 200, 500)):
            sketch.record(float(value), 5_000.0 + i * 10.0)
        # The horizon is pane-quantised, so at most one trailing pane
        # of the small regime remains visible; beyond its share the
        # distribution is the large regime.
        assert sketch.quantile(0.25) > 50
        assert sketch.quantile(0.05) < 50  # the trailing pane's share

    def test_too_old_records_ignored(self):
        sketch = make(window_ms=1_000.0, num_panes=4)
        sketch.record(5.0, 10_000.0)
        sketch.record(1.0, 100.0)  # far behind the newest timestamp
        assert sketch.count == 1

    def test_modest_out_of_order_accepted(self):
        sketch = make(window_ms=10_000.0, num_panes=10)
        sketch.record(1.0, 5_000.0)
        sketch.record(2.0, 4_500.0)  # late but within horizon
        assert sketch.count == 2


class TestMergedViewCache:
    """PR 3: repeated queries of an unchanged window must not re-merge."""

    def counting(self):
        calls = []

        def factory():
            calls.append(1)
            return DDSketch(alpha=0.01)

        return calls, SlidingWindowSketch(
            factory, window_ms=10_000.0, num_panes=10
        )

    def test_no_remerge_on_repeated_queries(self):
        calls, sketch = self.counting()
        for i in range(200):
            sketch.record(float(i % 13 + 1), i * 10.0)
        before = len(calls)
        first = sketch.quantile(0.5)
        assert len(calls) == before + 1  # exactly one view build
        for _ in range(10):
            assert sketch.quantile(0.5) == first
            sketch.quantiles((0.9, 0.99))
        assert len(calls) == before + 1  # served from the cache

    def test_record_invalidates_cache(self):
        calls, sketch = self.counting()
        sketch.record(1.0, 0.0)
        sketch.quantile(0.5)
        built = len(calls)
        sketch.record(2.0, 100.0)
        sketch.quantile(0.5)
        assert len(calls) == built + 1  # new value forced a re-merge

    def test_eviction_invalidates_cache(self):
        calls, sketch = self.counting()
        for t in range(10):
            sketch.record(1.0, t * 1_000.0)
        assert sketch.quantile(0.9) == pytest.approx(1.0, rel=0.02)
        built = len(calls)
        # Jump far ahead: old panes evict, the new value lands.
        sketch.record(100.0, 60_000.0)
        assert sketch.quantile(0.9) == pytest.approx(100.0, rel=0.02)
        # One factory call for the fresh pane, one for the re-merge.
        assert len(calls) == built + 2
        assert sketch.count == 1

    def test_ignored_late_record_keeps_cache(self):
        calls, sketch = self.counting()
        sketch.record(5.0, 50_000.0)
        sketch.quantile(0.5)
        built = len(calls)
        sketch.record(1.0, 100.0)  # beyond the horizon: ignored
        sketch.quantile(0.5)
        assert len(calls) == built  # window unchanged, cache valid


class TestResourceBounds:
    def test_pane_count_bounded(self, rng):
        sketch = make(window_ms=10_000.0, num_panes=8)
        for i in range(20_000):
            sketch.record(float(rng.uniform(1, 10)), i * 5.0)
        assert sketch.num_active_panes <= 8 + 1
        assert sketch.size_bytes() < 100_000

    def test_accuracy_preserved_through_pane_merging(self, rng):
        sketch = make(window_ms=100_000.0, num_panes=10)
        values = rng.uniform(1, 1_000, 10_000)
        for i, value in enumerate(values):
            sketch.record(float(value), i * 10.0)
        s = np.sort(values)
        for q in (0.25, 0.5, 0.99):
            true = float(s[int(np.ceil(q * s.size)) - 1])
            assert abs(sketch.quantile(q) - true) / true <= 0.0101, q

    def test_works_with_sampling_sketches(self, rng):
        sketch = SlidingWindowSketch(
            lambda: KLLSketch(max_compactor_size=128, seed=0),
            window_ms=5_000.0,
            num_panes=5,
        )
        for i in range(5_000):
            sketch.record(float(rng.uniform(0, 1)), i * 2.0)
        assert 0 <= sketch.quantile(0.5) <= 1
