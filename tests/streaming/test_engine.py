"""Unit tests for the streaming engine."""

import numpy as np
import pytest

from repro.data.streams import EventBatch
from repro.errors import PipelineError
from repro.streaming import (
    BoundedOutOfOrdernessWatermarks,
    CollectingAggregator,
    CountAggregator,
    Event,
    SessionWindows,
    SlidingEventTimeWindows,
    StreamEnvironment,
    TumblingEventTimeWindows,
    WindowSpan,
    run_tumbling_batch,
    window_values,
)


def make_batch(values, event_times, arrival_times=None):
    values = np.asarray(values, dtype=np.float64)
    event_times = np.asarray(event_times, dtype=np.float64)
    if arrival_times is None:
        arrival_times = event_times.copy()
    else:
        arrival_times = np.asarray(arrival_times, dtype=np.float64)
    return EventBatch(values, event_times, arrival_times)


class TestTumblingAggregation:
    def test_windows_partition_events(self):
        batch = make_batch(
            values=[1, 2, 3, 4, 5, 6],
            event_times=[0, 500, 999, 1000, 1500, 2100],
        )
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator())
        )
        assert report.total_events == 6
        assert report.dropped_late == 0
        windows = {r.window: r.result.tolist() for r in report.results}
        assert windows[WindowSpan(0.0, 1000.0)] == [1, 2, 3]
        assert windows[WindowSpan(1000.0, 2000.0)] == [4, 5]
        assert windows[WindowSpan(2000.0, 3000.0)] == [6]

    def test_event_counts_per_window(self):
        batch = make_batch([1, 2, 3], [0, 1, 1001])
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CountAggregator())
        )
        counts = {r.window.start: r.result for r in report.results}
        assert counts == {0.0: 2, 1000.0: 1}

    def test_requires_aggregator(self):
        env = StreamEnvironment()
        stream = env.from_events([]).window(
            TumblingEventTimeWindows(10.0)
        )
        with pytest.raises(PipelineError):
            stream.aggregate(None)


class TestLateEvents:
    def test_late_event_dropped_after_window_fires(self):
        # Event with event_time 500 arrives after the watermark (driven
        # by the event at t=1500) has passed its window's end.
        batch = make_batch(
            values=[1, 2, 3],
            event_times=[0, 1500, 500],
            arrival_times=[0, 10, 20],
        )
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator(), collect_late=True)
        )
        assert report.dropped_late == 1
        assert report.late_events[0].value == 3.0
        first = next(
            r for r in report.results if r.window.start == 0.0
        )
        assert first.result.tolist() == [1.0]

    def test_allowed_lateness_recovers_event(self):
        batch = make_batch(
            values=[1, 2, 3],
            event_times=[0, 1500, 500],
            arrival_times=[0, 10, 20],
        )
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator(), allowed_lateness_ms=600.0)
        )
        assert report.dropped_late == 0
        first = next(
            r for r in report.results if r.window.start == 0.0
        )
        assert first.result.tolist() == [1.0, 3.0]

    def test_bounded_out_of_orderness_tolerates_disorder(self):
        batch = make_batch(
            values=[1, 2, 3],
            event_times=[0, 1500, 900],
            arrival_times=[0, 10, 20],
        )
        env = StreamEnvironment()
        strict = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator())
        )
        assert strict.dropped_late == 1
        tolerant = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(
                CollectingAggregator(),
                watermarks=BoundedOutOfOrdernessWatermarks(600.0),
            )
        )
        assert tolerant.dropped_late == 0

    def test_loss_fraction(self):
        batch = make_batch(
            values=[1, 2, 3, 4],
            event_times=[0, 1500, 500, 700],
            arrival_times=[0, 1, 2, 3],
        )
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CountAggregator())
        )
        assert report.loss_fraction == pytest.approx(0.5)


class TestTransformations:
    def test_map_values(self):
        batch = make_batch([1, 2, 3], [0, 1, 2])
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .map_values(lambda v: v * 10)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator())
        )
        assert report.results[0].result.tolist() == [10.0, 20.0, 30.0]

    def test_filter(self):
        batch = make_batch([1, 2, 3, 4], [0, 1, 2, 3])
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .filter(lambda e: e.value % 2 == 0)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator())
        )
        assert report.results[0].result.tolist() == [2.0, 4.0]

    def test_key_by_partitions_windows(self):
        batch = make_batch([1, 2, 3, 4], [0, 1, 2, 3])
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .key_by(lambda e: "even" if e.value % 2 == 0 else "odd")
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator())
        )
        by_key = {r.key: r.result.tolist() for r in report.results}
        assert by_key == {"even": [2.0, 4.0], "odd": [1.0, 3.0]}

    def test_union_merges_streams(self):
        a = make_batch([1.0], [0.0], [5.0])
        b = make_batch([2.0], [1.0], [3.0])
        env = StreamEnvironment()
        union = env.from_batch(a).union(env.from_batch(b))
        events = list(union)
        assert [e.value for e in events] == [2.0, 1.0]

    def test_map_full_events(self):
        batch = make_batch([1.0], [0.0])
        env = StreamEnvironment()
        stream = env.from_batch(batch).map(
            lambda e: Event(e.value + 1, e.event_time, e.arrival_time)
        )
        assert list(stream)[0].value == 2.0


class TestSlidingWindows:
    def test_event_lands_in_all_overlapping_windows(self):
        batch = make_batch([1.0], [900.0])
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(SlidingEventTimeWindows(1_000.0, 500.0))
            .aggregate(CountAggregator())
        )
        assert len(report.results) == 2
        starts = sorted(r.window.start for r in report.results)
        assert starts == [0.0, 500.0]


class TestSessionWindows:
    def test_bursts_merge_into_sessions(self):
        # Two bursts separated by more than the 100 ms gap.
        times = [0, 50, 90, 500, 560]
        batch = make_batch(list(range(5)), times)
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(SessionWindows(100.0))
            .aggregate(CountAggregator())
        )
        counts = sorted(r.result for r in report.results)
        assert counts == [2, 3]

    def test_session_span_covers_burst(self):
        batch = make_batch([1, 2], [0, 80])
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(SessionWindows(100.0))
            .aggregate(CountAggregator())
        )
        [result] = report.results
        assert result.window.start == 0.0
        assert result.window.end == 180.0


class TestVectorisedPath:
    def test_empty_batch(self):
        batch = make_batch([], [])
        report = run_tumbling_batch(batch, 1_000.0, CountAggregator())
        assert report.total_events == 0
        assert report.results == []

    def test_matches_general_path(self, rng):
        # The central semantic property: both executors agree exactly.
        n = 3_000
        event_times = np.sort(rng.uniform(0, 10_000, n))
        batch = EventBatch(
            values=rng.uniform(0, 100, n),
            event_times=event_times,
            arrival_times=event_times + rng.exponential(200.0, n),
        )
        env = StreamEnvironment()
        general = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator())
        )
        fast = run_tumbling_batch(batch, 1_000.0, CollectingAggregator())
        assert general.total_events == fast.total_events
        assert general.dropped_late == fast.dropped_late
        general_map = {
            r.window: r.result.tolist()
            for r in general.results
            if r.result.size
        }
        fast_map = {r.window: r.result.tolist() for r in fast.results}
        assert general_map == fast_map

    def test_matches_general_path_with_lateness_and_bound(self, rng):
        n = 2_000
        event_times = np.sort(rng.uniform(0, 5_000, n))
        batch = EventBatch(
            values=rng.uniform(0, 1, n),
            event_times=event_times,
            arrival_times=event_times + rng.exponential(300.0, n),
        )
        env = StreamEnvironment()
        general = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(500.0))
            .aggregate(
                CountAggregator(),
                watermarks=BoundedOutOfOrdernessWatermarks(100.0),
                allowed_lateness_ms=250.0,
            )
        )
        fast = run_tumbling_batch(
            batch, 500.0, CountAggregator(),
            out_of_orderness_ms=100.0, allowed_lateness_ms=250.0,
        )
        assert general.dropped_late == fast.dropped_late
        general_counts = {
            r.window: r.result for r in general.results if r.result
        }
        fast_counts = {r.window: r.result for r in fast.results}
        assert general_counts == fast_counts

    def test_window_values_consistent_with_report(self, rng):
        n = 1_000
        event_times = np.sort(rng.uniform(0, 3_000, n))
        batch = EventBatch(
            values=rng.uniform(0, 1, n),
            event_times=event_times,
            arrival_times=event_times + rng.exponential(100.0, n),
        )
        report = run_tumbling_batch(batch, 1_000.0, CountAggregator())
        truth = window_values(batch, 1_000.0)
        for result in report.results:
            assert truth[result.window].size == result.result

    def test_all_late(self):
        # Second event's watermark already passed the first's window.
        batch = make_batch(
            values=[1, 2],
            event_times=[5_000, 100],
            arrival_times=[0, 1],
        )
        report = run_tumbling_batch(batch, 1_000.0, CountAggregator())
        assert report.dropped_late == 1


class TestIngestionTimeWindows:
    def test_no_late_events_in_ingestion_time(self):
        # The same disordered stream that loses an event in event time
        # loses nothing in ingestion time (Sec 2.5's trade-off).
        batch = make_batch(
            values=[1, 2, 3],
            event_times=[0, 1500, 500],
            arrival_times=[0, 10, 20],
        )
        env = StreamEnvironment()
        event_time = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CountAggregator())
        )
        ingestion_time = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(
                CountAggregator(), time_characteristic="ingestion"
            )
        )
        assert event_time.dropped_late == 1
        assert ingestion_time.dropped_late == 0
        assert sum(r.result for r in ingestion_time.results) == 3

    def test_ingestion_windows_group_by_arrival(self):
        batch = make_batch(
            values=[1, 2],
            event_times=[0.0, 1.0],       # same event-time window
            arrival_times=[0.0, 5_000.0],  # different arrival windows
        )
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(
                CountAggregator(), time_characteristic="ingestion"
            )
        )
        assert len(report.results) == 2

    def test_unknown_characteristic_rejected(self):
        env = StreamEnvironment()
        stream = env.from_batch(make_batch([1.0], [0.0])).window(
            TumblingEventTimeWindows(10.0)
        )
        with pytest.raises(PipelineError):
            stream.aggregate(
                CountAggregator(), time_characteristic="wallclock"
            )
