"""Unit tests for window assigners."""

import pytest

from repro.errors import InvalidValueError
from repro.streaming.windows import (
    SessionWindows,
    SlidingEventTimeWindows,
    TumblingEventTimeWindows,
    WindowSpan,
)


class TestWindowSpan:
    def test_validation(self):
        with pytest.raises(InvalidValueError):
            WindowSpan(10.0, 10.0)
        with pytest.raises(InvalidValueError):
            WindowSpan(10.0, 5.0)

    def test_contains_half_open(self):
        span = WindowSpan(0.0, 10.0)
        assert span.contains(0.0)
        assert span.contains(9.999)
        assert not span.contains(10.0)
        assert not span.contains(-0.001)

    def test_intersects(self):
        a = WindowSpan(0.0, 10.0)
        assert a.intersects(WindowSpan(5.0, 15.0))
        assert a.intersects(WindowSpan(-5.0, 1.0))
        assert not a.intersects(WindowSpan(10.0, 20.0))  # half-open

    def test_cover(self):
        a = WindowSpan(0.0, 10.0)
        b = WindowSpan(5.0, 20.0)
        assert a.cover(b) == WindowSpan(0.0, 20.0)

    def test_ordering(self):
        assert WindowSpan(0.0, 10.0) < WindowSpan(10.0, 20.0)

    def test_size(self):
        assert WindowSpan(5.0, 25.0).size == 20.0


class TestTumblingWindows:
    def test_paper_window(self):
        # The paper uses 20 s tumbling windows.
        assigner = TumblingEventTimeWindows(20_000.0)
        [span] = assigner.assign(25_000.0)
        assert span == WindowSpan(20_000.0, 40_000.0)

    def test_exactly_one_window(self):
        assigner = TumblingEventTimeWindows(1_000.0)
        for t in (0.0, 999.999, 1_000.0, 12_345.6):
            assert len(assigner.assign(t)) == 1

    def test_boundary_goes_to_next_window(self):
        assigner = TumblingEventTimeWindows(1_000.0)
        [span] = assigner.assign(1_000.0)
        assert span.start == 1_000.0

    def test_windows_partition_the_timeline(self):
        assigner = TumblingEventTimeWindows(500.0)
        spans = {tuple(assigner.assign(t)[0] for _ in [0])[0]
                 for t in [0, 499, 500, 999, 1000]}
        ordered = sorted(spans)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end == b.start

    def test_negative_times(self):
        assigner = TumblingEventTimeWindows(1_000.0)
        [span] = assigner.assign(-1.0)
        assert span == WindowSpan(-1_000.0, 0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(InvalidValueError):
            TumblingEventTimeWindows(0.0)


class TestSlidingWindows:
    def test_count_is_size_over_slide(self):
        assigner = SlidingEventTimeWindows(1_000.0, 250.0)
        spans = assigner.assign(2_000.0)
        assert len(spans) == 4
        for span in spans:
            assert span.contains(2_000.0)

    def test_slide_equal_size_is_tumbling(self):
        sliding = SlidingEventTimeWindows(1_000.0, 1_000.0)
        tumbling = TumblingEventTimeWindows(1_000.0)
        assert sliding.assign(1_234.0) == tumbling.assign(1_234.0)

    def test_rejects_gappy_slide(self):
        with pytest.raises(InvalidValueError):
            SlidingEventTimeWindows(1_000.0, 2_000.0)


class TestSessionWindows:
    def test_initial_window_is_gap_sized(self):
        assigner = SessionWindows(10_000.0)
        [span] = assigner.assign(5_000.0)
        assert span == WindowSpan(5_000.0, 15_000.0)

    def test_is_merging(self):
        assert SessionWindows(1_000.0).is_merging

    def test_rejects_bad_gap(self):
        with pytest.raises(InvalidValueError):
            SessionWindows(-1.0)
