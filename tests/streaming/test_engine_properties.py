"""Property-based equivalence of the engine's execution paths.

Hypothesis generates arbitrary timestamped batches (values, event
times, delays); the general per-event pipeline and the vectorised
tumbling executor must agree *exactly* on window contents, late-drop
counts, and totals — for every stream shape, not just the seeded ones
the unit tests use.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.streams import EventBatch
from repro.streaming import (
    BoundedOutOfOrdernessWatermarks,
    CollectingAggregator,
    CountAggregator,
    StreamEnvironment,
    TumblingEventTimeWindows,
    run_tumbling_batch,
    window_values,
)


@st.composite
def event_batches(draw, max_events: int = 60):
    n = draw(st.integers(min_value=1, max_value=max_events))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    event_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5_000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2_000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    return EventBatch(
        values=np.asarray(values),
        event_times=np.asarray(event_times),
        arrival_times=np.asarray(event_times) + np.asarray(delays),
    )


window_sizes = st.sampled_from([250.0, 500.0, 1_000.0])
bounds = st.sampled_from([0.0, 100.0, 500.0])
lateness = st.sampled_from([0.0, 250.0])


class TestPathEquivalence:
    @given(batch=event_batches(), size=window_sizes,
           bound=bounds, late=lateness)
    @settings(max_examples=120, deadline=None)
    def test_general_equals_vectorised(self, batch, size, bound, late):
        env = StreamEnvironment()
        general = (
            env.from_batch(batch)
            .window(TumblingEventTimeWindows(size))
            .aggregate(
                CollectingAggregator(),
                watermarks=BoundedOutOfOrdernessWatermarks(bound),
                allowed_lateness_ms=late,
            )
        )
        fast = run_tumbling_batch(
            batch, size, CollectingAggregator(),
            out_of_orderness_ms=bound, allowed_lateness_ms=late,
        )
        assert general.total_events == fast.total_events
        assert general.dropped_late == fast.dropped_late
        general_map = {
            r.window: sorted(r.result.tolist())
            for r in general.results if r.result.size
        }
        fast_map = {
            r.window: sorted(r.result.tolist()) for r in fast.results
        }
        assert general_map == fast_map

    @given(batch=event_batches(), size=window_sizes)
    @settings(max_examples=80, deadline=None)
    def test_window_values_matches_executor(self, batch, size):
        report = run_tumbling_batch(batch, size, CountAggregator())
        truth = window_values(batch, size)
        assert sum(v.size for v in truth.values()) == (
            report.total_events - report.dropped_late
        )
        for result in report.results:
            assert truth[result.window].size == result.result

    @given(batch=event_batches(), size=window_sizes)
    @settings(max_examples=60, deadline=None)
    def test_nothing_lost_nothing_invented(self, batch, size):
        report = run_tumbling_batch(
            batch, size, CollectingAggregator()
        )
        surviving = sorted(
            value
            for result in report.results
            for value in result.result.tolist()
        )
        # Survivors plus dropped account for exactly the input.
        assert len(surviving) + report.dropped_late == len(batch)
        all_values = sorted(batch.values.tolist())
        # Every survivor is a real input value (multiset inclusion).
        import collections
        input_counts = collections.Counter(all_values)
        surviving_counts = collections.Counter(surviving)
        assert not surviving_counts - input_counts
