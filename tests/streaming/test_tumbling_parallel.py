"""Differential tests: run_tumbling_parallel vs. run_tumbling_batch.

Both executors take their late/kept decision from the shared
``tumbling_assignment`` helper, so every (window set, drop count,
per-window event count) must match exactly; for order-insensitive
aggregators (counting, DDSketch) the window *results* must match bit
for bit too.
"""

import numpy as np
import pytest

from repro.core import DDSketch
from repro.data.streams import EventBatch
from repro.errors import PipelineError
from repro.streaming import (
    CountAggregator,
    SketchAggregator,
    run_tumbling_batch,
    run_tumbling_parallel,
)

WINDOW_MS = 1_000.0


def shuffled_batch(rng, size=8_000, delay_ms=400.0):
    """Out-of-order arrivals with real late data."""
    values = 1.0 + rng.pareto(1.0, size).clip(max=1e5)
    event_times = rng.uniform(0.0, 20_000.0, size)
    arrival_times = event_times + rng.exponential(delay_ms, size)
    order = np.argsort(arrival_times)
    return EventBatch(
        values[order], event_times[order], arrival_times[order]
    )


@pytest.mark.parametrize("n_shards", (1, 2, 7, 16))
@pytest.mark.parametrize("partitioner", ("round_robin", "hash"))
def test_drop_counts_and_windows_match_sequential(
    rng, n_shards, partitioner
):
    batch = shuffled_batch(rng)
    sequential = run_tumbling_batch(
        batch, WINDOW_MS, CountAggregator(),
        out_of_orderness_ms=100.0, allowed_lateness_ms=50.0,
    )
    parallel = run_tumbling_parallel(
        batch, WINDOW_MS, CountAggregator(),
        out_of_orderness_ms=100.0, allowed_lateness_ms=50.0,
        n_shards=n_shards, partitioner=partitioner,
    )
    assert sequential.dropped_late > 0  # the stream genuinely drops
    assert parallel.dropped_late == sequential.dropped_late
    assert parallel.total_events == sequential.total_events
    assert [r.window for r in parallel.results] == (
        [r.window for r in sequential.results]
    )
    assert [r.event_count for r in parallel.results] == (
        [r.event_count for r in sequential.results]
    )
    assert [r.result for r in parallel.results] == (
        [r.result for r in sequential.results]
    )


def test_ddsketch_windows_bit_identical(rng):
    batch = shuffled_batch(rng, size=5_000)
    agg = SketchAggregator(DDSketch, quantiles=(0.5, 0.95, 0.99))
    sequential = run_tumbling_batch(
        batch, WINDOW_MS, agg, out_of_orderness_ms=100.0
    )
    parallel = run_tumbling_parallel(
        batch, WINDOW_MS, agg, out_of_orderness_ms=100.0, n_shards=7
    )
    assert parallel.dropped_late == sequential.dropped_late
    for a, b in zip(parallel.results, sequential.results):
        assert a.window == b.window
        assert a.result == b.result


def test_all_late_stream_drops_everything(rng):
    # Arrival order forces the watermark past every window before any
    # of its events arrive.
    values = np.array([1.0, 2.0, 3.0])
    event_times = np.array([0.0, 10.0, 50_000.0])
    arrival_times = np.array([60_000.0, 60_001.0, 59_999.0])
    order = np.argsort(arrival_times)
    batch = EventBatch(
        values[order], event_times[order], arrival_times[order]
    )
    report = run_tumbling_parallel(batch, WINDOW_MS, CountAggregator())
    expected = run_tumbling_batch(batch, WINDOW_MS, CountAggregator())
    assert report.dropped_late == expected.dropped_late
    assert len(report.results) == len(expected.results)


def test_empty_batch():
    batch = EventBatch(
        np.array([]), np.array([]), np.array([])
    )
    report = run_tumbling_parallel(batch, WINDOW_MS, CountAggregator())
    assert report.total_events == 0
    assert report.results == []


def test_rejects_bad_shard_count(rng):
    batch = shuffled_batch(rng, size=10)
    with pytest.raises(PipelineError):
        run_tumbling_parallel(
            batch, WINDOW_MS, CountAggregator(), n_shards=0
        )
