"""Unit tests for watermark strategies."""

import math

import pytest

from repro.errors import InvalidValueError
from repro.streaming.time import (
    AscendingTimestampsWatermarks,
    BoundedOutOfOrdernessWatermarks,
)


class TestAscendingWatermarks:
    def test_starts_at_minus_infinity(self):
        strategy = AscendingTimestampsWatermarks()
        assert strategy.current_watermark == -math.inf

    def test_tracks_maximum(self):
        strategy = AscendingTimestampsWatermarks()
        assert strategy.on_event(10.0) == 10.0
        assert strategy.on_event(5.0) == 10.0  # never regresses
        assert strategy.on_event(20.0) == 20.0

    def test_monotone_under_any_sequence(self):
        strategy = AscendingTimestampsWatermarks()
        previous = -math.inf
        for t in [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]:
            watermark = strategy.on_event(t)
            assert watermark >= previous
            previous = watermark


class TestBoundedOutOfOrderness:
    def test_lags_by_bound(self):
        strategy = BoundedOutOfOrdernessWatermarks(100.0)
        assert strategy.on_event(1_000.0) == 900.0

    def test_zero_bound_equals_ascending(self):
        bounded = BoundedOutOfOrdernessWatermarks(0.0)
        ascending = AscendingTimestampsWatermarks()
        for t in [5.0, 3.0, 8.0, 8.0, 2.0]:
            assert bounded.on_event(t) == ascending.on_event(t)

    def test_tolerates_disorder_within_bound(self):
        strategy = BoundedOutOfOrdernessWatermarks(50.0)
        strategy.on_event(100.0)  # watermark 50
        # An event at time 60 is NOT late: 60 > watermark 50.
        assert strategy.current_watermark < 60.0

    def test_rejects_negative_bound(self):
        with pytest.raises(InvalidValueError):
            BoundedOutOfOrdernessWatermarks(-1.0)
