"""The planted corpus bugs must be caught *live*, not just statically.

Each test executes the same source the static rules flag
(``tests/analysis/corpus``) under an instrumented monitor and drives it
on real threads: the ABBA deadlock surfaces as a lock-order violation
(without ever actually deadlocking — edges, not schedules, convict it),
and the unguarded shared counter trips an Eraser watchpoint.

These tests manage their own monitor instead of using the
``lock_sanitizer`` fixture because the violations are the *expected*
outcome here.
"""

from pathlib import Path

import pytest

from repro.errors import LockOrderViolation, RaceViolation
from repro.sanitizer import LockMonitor, instrumented

CORPUS = Path(__file__).resolve().parent.parent / "analysis" / "corpus"


def load(filename, module):
    """Execute a corpus file as if it were the module it claims to be.

    The ``# module:`` header is what makes the *static* scopes apply;
    setting ``__name__`` the same way is what makes the *runtime*
    factory wrap its locks.
    """
    path = CORPUS / filename
    namespace = {"__name__": module}
    exec(compile(path.read_text(), str(path), "exec"), namespace)
    return namespace


def test_abba_deadlock_caught_live_single_thread():
    monitor = LockMonitor()
    with instrumented(monitor):
        ns = load("bad_deadlock.py", "repro.parallel.baddead")
        pair = ns["AbbaPair"]()
        pair.a_then_b(10)
        # The reversed nesting would need a second unlucky thread to
        # actually deadlock; the sanitizer convicts it immediately.
        with pytest.raises(LockOrderViolation, match="cycle"):
            pair.b_then_a(10)
    assert monitor.held_uids() == (), "failed acquire must unwind cleanly"


def test_abba_deadlock_caught_across_threads():
    """Two threads, run one after the other: no schedule ever hangs,
    but the shared order graph still convicts the second thread."""
    import threading

    monitor = LockMonitor()
    caught = []
    with instrumented(monitor):
        ns = load("bad_deadlock.py", "repro.parallel.baddead")
        pair = ns["AbbaPair"]()

        def second_arm():
            try:
                pair.b_then_a(1)
            except LockOrderViolation as exc:
                caught.append(exc)

        first = threading.Thread(target=pair.a_then_b, args=(1,))
        first.start()
        first.join(timeout=10.0)
        second = threading.Thread(target=second_arm)
        second.start()
        second.join(timeout=10.0)
    assert len(caught) == 1
    assert "cycle" in str(caught[0])


def test_interprocedural_cycle_caught_live():
    """NestedPair hides one arm of the cycle behind a method call."""
    monitor = LockMonitor()
    with instrumented(monitor):
        ns = load("bad_deadlock.py", "repro.parallel.baddead")
        pair = ns["NestedPair"]()
        pair.bump()  # outer -> inner, via _bump_inner
        with pytest.raises(LockOrderViolation, match="cycle"):
            pair.sweep()  # inner -> outer closes it


def test_cycle_caught_at_teardown_when_never_blocking():
    """Timed acquires can't park forever, so the live check skips them
    — teardown's acyclicity assertion is the net underneath."""
    monitor = LockMonitor()
    with instrumented(monitor):
        ns = load("bad_deadlock.py", "repro.parallel.baddead")
        pair = ns["AbbaPair"]()
        pair.a_then_b(1)
        assert pair.lock_b.acquire(True, 1.0)
        assert pair.lock_a.acquire(True, 1.0)
        pair.lock_a.release()
        pair.lock_b.release()
    with pytest.raises(LockOrderViolation, match="cycle"):
        monitor.verify()


def test_shared_counter_race_caught_live():
    monitor = LockMonitor()
    try:
        with instrumented(monitor):
            ns = load("bad_race.py", "repro.obs.badrace")
            counter = ns["SharedCounter"]()
            monitor.watch(counter, "total")
            counter.run(workers=4, n=500)
        assert monitor.races, "unguarded increments must trip the watchpoint"
        assert monitor.races[0].attr == "total"
        with pytest.raises(RaceViolation, match="total"):
            monitor.verify()
    finally:
        monitor.unwatch_all()


def test_good_corpus_runs_clean():
    """The known-good twin does the same work and must verify green."""
    monitor = LockMonitor()
    try:
        with instrumented(monitor):
            ns = load("good_concurrency.py", "repro.parallel.goodconc")
            pair = ns["OrderedPair"]()
            monitor.watch(pair, "applied")
            for value in (1.0, 2.0, 3.0):
                pair.ingest(value)
            pair.spawn(4)
            pair.drain()
            pair.reset()
        assert monitor.edges, "parent -> child nesting should be recorded"
        monitor.verify()
    finally:
        monitor.unwatch_all()
