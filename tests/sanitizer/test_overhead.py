"""The <10% overhead gate for sanitized concurrency tests.

The sanitizer only pays on lock operations, and buffered ingestion
amortises those across ``buffer_size`` values — so a realistic
multi-threaded ingest workload should time within 10% of its
uninstrumented twin.  Measured as a min-of-N of interleaved runs (min
is robust to scheduler noise; interleaving is robust to drift), with a
small absolute slack so a sub-second workload can't fail on a single
page fault.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import DDSketch
from repro.parallel import BufferedIngestor
from repro.sanitizer import LockMonitor, instrumented

THREADS = 4
BATCHES = 60
BATCH = 2_048
REPEATS = 3


def run_workload():
    ingestor = BufferedIngestor(DDSketch(alpha=0.01), buffer_size=8_192)
    rng = np.random.default_rng(7)
    chunks = 1.0 + rng.pareto(1.0, (THREADS, BATCHES, BATCH))

    def worker(rows):
        for row in rows:
            ingestor.ingest_batch(row)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(chunks[i],))
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    elapsed = time.perf_counter() - start
    ingestor.flush()
    assert ingestor.target.count == THREADS * BATCHES * BATCH
    return elapsed


@pytest.mark.slow
def test_sanitizer_overhead_below_ten_percent():
    baseline_times, sanitized_times = [], []
    for _ in range(REPEATS):
        baseline_times.append(run_workload())
        monitor = LockMonitor()
        with instrumented(monitor):
            sanitized_times.append(run_workload())
        monitor.verify()
    baseline = min(baseline_times)
    sanitized = min(sanitized_times)
    assert sanitized <= baseline * 1.10 + 0.05, (
        f"sanitized {sanitized:.3f}s vs baseline {baseline:.3f}s "
        f"({sanitized / baseline:.2%})"
    )
