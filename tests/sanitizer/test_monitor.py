"""Unit tests for the runtime lock sanitizer.

Wrappers are constructed directly (this test module is not ``repro.*``,
so the instrumented factory would hand it raw primitives on purpose —
which is itself one of the tests below).
"""

import threading

import pytest

from repro.errors import LockOrderViolation, RaceViolation
from repro.sanitizer import LockMonitor, SanitizedLock, instrumented


def make_lock(monitor, label="test:0", reentrant=False):
    inner = threading.RLock() if reentrant else threading.Lock()
    return SanitizedLock(inner, monitor, label, reentrant)


class TestSanitizedLock:
    def test_context_manager_and_locked(self):
        monitor = LockMonitor()
        lock = make_lock(monitor)
        assert not lock.locked()
        with lock:
            assert lock.locked()
            assert monitor.held_uids() == (lock.uid,)
        assert not lock.locked()
        assert monitor.held_uids() == ()

    def test_failed_nonblocking_acquire_records_nothing(self):
        monitor = LockMonitor()
        lock = make_lock(monitor)
        grabbed = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                grabbed.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert grabbed.wait(timeout=5.0)
        assert lock.acquire(blocking=False) is False
        assert monitor.held_uids() == ()
        release.set()
        thread.join(timeout=5.0)

    def test_timed_acquire_returns_false_on_timeout(self):
        monitor = LockMonitor()
        lock = make_lock(monitor)
        lock.acquire()
        try:
            done = []

            def contender():
                done.append(lock.acquire(True, 0.05))

            thread = threading.Thread(target=contender)
            thread.start()
            thread.join(timeout=5.0)
            assert done == [False]
        finally:
            lock.release()

    def test_self_deadlock_raises_instead_of_hanging(self):
        monitor = LockMonitor()
        lock = make_lock(monitor)
        lock.acquire()
        try:
            with pytest.raises(LockOrderViolation, match="self-deadlock"):
                lock.acquire()
        finally:
            lock.release()

    def test_rlock_reentry_is_fine_and_records_no_edge(self):
        monitor = LockMonitor()
        lock = make_lock(monitor, reentrant=True)
        with lock:
            with lock:
                assert monitor.held_uids() == (lock.uid,)
            # Inner exit must not fully release.
            assert monitor.held_uids() == (lock.uid,)
        assert monitor.held_uids() == ()
        assert monitor.edges == {}


class TestLockOrderGraph:
    def test_nested_acquire_records_one_edge_with_witness(self):
        monitor = LockMonitor()
        outer = make_lock(monitor, "outer:1")
        inner = make_lock(monitor, "inner:2")
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert set(monitor.edges) == {(outer.uid, inner.uid)}
        witness = monitor.edges[(outer.uid, inner.uid)]
        assert witness.count == 3
        assert witness.thread == threading.current_thread().name
        monitor.assert_acyclic()  # consistent order: no complaint

    def test_cycle_detected_at_teardown(self):
        monitor = LockMonitor()
        a = make_lock(monitor, "a:1")
        b = make_lock(monitor, "b:2")
        with a:
            with b:
                pass
        # Timed acquires dodge the live closure check (they cannot
        # park forever) but still feed the graph...
        b.acquire()
        assert a.acquire(True, 1.0)
        a.release()
        b.release()
        # ...so teardown catches the ABBA shape.
        with pytest.raises(LockOrderViolation, match="cycle"):
            monitor.assert_acyclic()

    def test_blocking_acquire_that_closes_cycle_raises_live(self):
        monitor = LockMonitor()
        a = make_lock(monitor, "a:1")
        b = make_lock(monitor, "b:2")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation, match="cycle"):
                a.acquire()
        assert monitor.held_uids() == ()

    def test_edges_are_per_instance_not_per_site(self):
        """Two locks from the same source line are distinct vertices."""
        monitor = LockMonitor()
        shard_locks = [make_lock(monitor, "shard:9") for _ in range(2)]
        with shard_locks[0]:
            with shard_locks[1]:
                pass
        # Opposite nesting over *different* instances would be a real
        # cycle; same-instance reasoning by label would miss it.
        with shard_locks[1]:
            with pytest.raises(LockOrderViolation):
                shard_locks[0].acquire()


class TestWatchpoints:
    class Plain:
        def __init__(self):
            self.value = 0

    def test_single_thread_access_is_not_a_race(self):
        monitor = LockMonitor()
        obj = self.Plain()
        try:
            monitor.watch(obj, "value")
            for _ in range(10):
                obj.value += 1
            assert obj.value == 10
            monitor.verify()
        finally:
            monitor.unwatch_all()

    def test_unsynchronized_cross_thread_write_is_a_race(self):
        monitor = LockMonitor()
        obj = self.Plain()
        try:
            monitor.watch(obj, "value")
            obj.value += 1

            def writer():
                obj.value += 1

            thread = threading.Thread(target=writer, name="racer")
            thread.start()
            thread.join(timeout=5.0)
            assert monitor.races
            assert monitor.races[0].attr == "value"
            with pytest.raises(RaceViolation, match="value"):
                monitor.verify()
        finally:
            monitor.unwatch_all()

    def test_common_lock_suppresses_the_race(self):
        monitor = LockMonitor()
        guard = make_lock(monitor, "guard:1")
        obj = self.Plain()
        try:
            monitor.watch(obj, "value")
            with guard:
                obj.value += 1

            def writer():
                with guard:
                    obj.value += 1

            thread = threading.Thread(target=writer)
            thread.start()
            thread.join(timeout=5.0)
            with guard:  # even the assert must follow the discipline
                assert obj.value == 2
            monitor.verify()
        finally:
            monitor.unwatch_all()

    def test_unwatch_all_removes_the_descriptor(self):
        monitor = LockMonitor()
        obj = self.Plain()
        monitor.watch(obj, "value")
        assert isinstance(type(obj).__dict__["value"], property)
        monitor.unwatch_all()
        assert "value" not in type(obj).__dict__


class TestFaultAudit:
    class Boom(Exception):
        pass

    class FakeInjector:
        def __init__(self):
            self.sites = []

        def check(self, site):
            self.sites.append(site)
            if site == "boom":
                raise TestFaultAudit.Boom(site)

    def test_fault_under_lock_is_recorded(self):
        monitor = LockMonitor()
        lock = make_lock(monitor, "wal:42")
        injector = monitor.wrap_fault(self.FakeInjector())
        with lock:
            with pytest.raises(self.Boom):
                injector.check("boom")
        assert len(monitor.faults_under_lock) == 1
        audit = monitor.faults_under_lock[0]
        assert audit.site == "boom"
        assert audit.locks == ("wal:42",)
        # A report, not a failure: verify stays green.
        monitor.verify()

    def test_fault_with_no_lock_held_is_not_recorded(self):
        monitor = LockMonitor()
        injector = monitor.wrap_fault(self.FakeInjector())
        with pytest.raises(self.Boom):
            injector.check("boom")
        assert monitor.faults_under_lock == []
        assert injector.sites == ["boom"]

    def test_passthrough_when_fault_does_not_fire(self):
        monitor = LockMonitor()
        injector = monitor.wrap_fault(self.FakeInjector())
        injector.check("quiet")
        assert injector.sites == ["quiet"]
        assert monitor.faults_under_lock == []


class TestInstrumented:
    def test_repro_frames_get_wrappers_others_do_not(self):
        monitor = LockMonitor()
        repro_ns = {"__name__": "repro.fake.module"}
        other_ns = {"__name__": "tests.somewhere"}
        code = "made = (threading.Lock(), threading.RLock())"
        with instrumented(monitor):
            for namespace in (repro_ns, other_ns):
                namespace["threading"] = threading
                exec(compile(code, "<corpus>", "exec"), namespace)
        lock, rlock = repro_ns["made"]
        assert isinstance(lock, SanitizedLock) and not lock.reentrant
        assert isinstance(rlock, SanitizedLock) and rlock.reentrant
        assert "repro.fake.module" in lock.label
        for raw in other_ns["made"]:
            assert not isinstance(raw, SanitizedLock)

    def test_factories_are_restored_on_exit(self):
        before = (threading.Lock, threading.RLock)
        with instrumented(LockMonitor()):
            assert threading.Lock is not before[0]
        assert (threading.Lock, threading.RLock) == before


class TestFixture:
    def test_lock_sanitizer_fixture_sees_repro_locks(self, lock_sanitizer):
        import numpy as np

        from repro.core import DDSketch
        from repro.parallel import BufferedIngestor

        ingestor = BufferedIngestor(DDSketch(alpha=0.02), buffer_size=64)
        ingestor.ingest_batch(np.linspace(1.0, 2.0, 256))
        assert lock_sanitizer.edges, "flush should nest buffer -> target"
        labels = {
            lock.label for lock in lock_sanitizer._locks.values()
        }
        assert any("repro.parallel.buffered" in label for label in labels)
