"""Unit tests for the QuantileSketch base interface."""

import numpy as np
import pytest

from repro.core import DDSketch, KLLSketch, make_sketch
from repro.core.base import validate_quantile
from repro.core.registry import SKETCH_CLASSES
from repro.errors import EmptySketchError, InvalidQuantileError

ALL_NAMES = sorted(SKETCH_CLASSES)


class TestValidateQuantile:
    def test_accepts_half_open_interval(self):
        assert validate_quantile(1.0) == 1.0
        assert validate_quantile(0.5) == 0.5
        assert validate_quantile(1e-9) == 1e-9

    def test_rejects_out_of_range(self):
        for q in (0.0, -0.5, 1.0001, 2.0):
            with pytest.raises(InvalidQuantileError):
                validate_quantile(q)

    def test_error_carries_value(self):
        with pytest.raises(InvalidQuantileError) as excinfo:
            validate_quantile(1.5)
        assert excinfo.value.q == 1.5


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCommonInterface:
    def test_len_and_count(self, name, rng):
        sketch = make_sketch(name)
        assert len(sketch) == 0
        sketch.update_batch(rng.uniform(1, 2, 100))
        assert len(sketch) == 100
        assert sketch.count == 100

    def test_min_max(self, name):
        sketch = make_sketch(name)
        sketch.update_batch([5.0, 1.0, 9.0])
        assert sketch.min == 1.0
        assert sketch.max == 9.0

    def test_empty_queries_raise(self, name):
        sketch = make_sketch(name)
        with pytest.raises(EmptySketchError):
            sketch.quantile(0.5)
        with pytest.raises(EmptySketchError):
            sketch.rank(1.0)
        with pytest.raises(EmptySketchError):
            sketch.cdf(1.0)

    def test_quantiles_list(self, name, rng):
        sketch = make_sketch(name)
        sketch.update_batch(rng.uniform(1, 2, 5_000))
        estimates = sketch.quantiles((0.25, 0.5, 0.75))
        assert len(estimates) == 3
        assert estimates == sorted(estimates)

    def test_cdf_in_unit_interval(self, name, rng):
        sketch = make_sketch(name)
        sketch.update_batch(rng.uniform(1, 2, 5_000))
        for value in (0.5, 1.2, 1.7, 3.0):
            assert 0.0 <= sketch.cdf(value) <= 1.0

    def test_size_bytes_positive(self, name, rng):
        sketch = make_sketch(name)
        sketch.update_batch(rng.uniform(1, 2, 1_000))
        assert sketch.size_bytes() > 0


class TestDefaultRankBisection:
    def test_matches_direct_implementation(self, rng):
        # DDSketch overrides rank(); the base-class bisection fallback
        # must roughly agree with it.
        data = 10.0 ** rng.uniform(0, 3, 20_000)
        sketch = DDSketch(alpha=0.01)
        sketch.update_batch(data)
        from repro.core.base import QuantileSketch

        for value in np.quantile(data, [0.2, 0.5, 0.8]):
            direct = sketch.rank(float(value))
            fallback = QuantileSketch.rank(sketch, float(value))
            assert abs(direct - fallback) / sketch.count < 0.03


class TestReprs:
    def test_repr_mentions_count(self, rng):
        sketch = KLLSketch(seed=0)
        sketch.update_batch(rng.uniform(0, 1, 10))
        assert "count=10" in repr(sketch)
