"""Differential ingest-equivalence battery: batch == scalar, proven.

Every registry sketch now overrides ``update_batch`` with a vectorised
fast path.  These tests pin the contract that makes those rewrites
safe: for any stream and any chunking, batch ingestion must be
indistinguishable from the per-item ``update`` loop —

* **byte-level** for every sketch whose state is a deterministic
  function of the (seeded) input stream: the serialized bytes of the
  scalar-fed and batch-fed sketches are identical, so compaction
  schedules, RNG draw sequences, tuple deltas and buffer phases all
  replayed exactly;
* **answer-level** for Moments, whose floating power sums are
  accumulated in a different addition order by the two paths (the sums
  are mathematically equal; the bits are not).

The battery is registry-driven: adding a sketch to ``SKETCH_CLASSES``
automatically enrolls it here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import QuantileSketch
from repro.core.registry import SKETCH_CLASSES, paper_config
from repro.core.serialization import dumps

SEED = 20230807
QS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)

#: Sketches compared by answers instead of bytes: Moments accumulates
#: floating power sums whose addition order differs between the scalar
#: and vectorised paths.
ANSWER_LEVEL = frozenset({"moments"})

BATCH_SIZES = (1, 7, 1024)
LARGE_SIZE = 100_000

ALL_SKETCHES = sorted(SKETCH_CLASSES)


def dataset(name: str, size: int, seed: int = SEED) -> np.ndarray:
    """A stream in the value domain sketch *name* accepts."""
    rng = np.random.default_rng(seed)
    if name == "hdr":
        # Non-negative, below the default highest trackable value.
        return rng.uniform(0.0, 1e6, size)
    if name == "dcs":
        # DCS needs prior knowledge of the universe [0, 2^20).
        return rng.integers(0, 1 << 20, size).astype(np.float64)
    return rng.normal(loc=100.0, scale=25.0, size=size)


def scalar_ingest(sketch: QuantileSketch, values: np.ndarray) -> None:
    for value in values.tolist():
        sketch.update(value)


def batch_ingest(
    sketch: QuantileSketch, values: np.ndarray, batch_size: int
) -> None:
    for pos in range(0, values.size, batch_size):
        sketch.update_batch(values[pos : pos + batch_size])


def assert_equivalent(
    name: str, scalar: QuantileSketch, batched: QuantileSketch
) -> None:
    assert scalar.count == batched.count
    assert scalar.min == batched.min
    assert scalar.max == batched.max
    if name in ANSWER_LEVEL:
        for q in QS:
            assert batched.quantile(q) == pytest.approx(
                scalar.quantile(q), rel=1e-9, abs=1e-9
            )
    else:
        assert dumps(scalar) == dumps(batched), (
            f"{name}: batch-fed state diverged from scalar-fed state"
        )


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_batch_matches_scalar(name: str, batch_size: int) -> None:
    data = dataset(name, 4000)
    scalar = paper_config(name, seed=SEED)
    batched = paper_config(name, seed=SEED)
    scalar_ingest(scalar, data)
    batch_ingest(batched, data, batch_size)
    assert_equivalent(name, scalar, batched)


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_ragged_chunk_boundaries(name: str) -> None:
    """Chunk sizes crossing every internal boundary (buffer fills,
    compaction triggers, collapse points) must not change the state."""
    data = dataset(name, 8000)
    scalar = paper_config(name, seed=SEED)
    batched = paper_config(name, seed=SEED)
    scalar_ingest(scalar, data)
    pos = 0
    for size in (1, 7, 0, 349, 350, 351, 1024, 2048, 100_000):
        batched.update_batch(data[pos : pos + size])
        pos += size
        if pos >= data.size:
            break
    batched.update_batch(data[pos:])
    assert_equivalent(name, scalar, batched)


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_empty_batches_are_noops(name: str) -> None:
    """Batch size 0: empty batches sprinkled through the stream leave
    no trace — including zero-length numpy arrays and empty lists."""
    data = dataset(name, 2000)
    scalar = paper_config(name, seed=SEED)
    batched = paper_config(name, seed=SEED)
    scalar_ingest(scalar, data)
    batched.update_batch([])
    for pos in range(0, data.size, 500):
        batched.update_batch(data[pos : pos + 500])
        batched.update_batch(np.zeros(0))
    assert_equivalent(name, scalar, batched)


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_batch_matches_scalar_large(name: str) -> None:
    """The 10^5-value case: one monolithic batch, deep into every
    sketch's compaction/collapse regime."""
    data = dataset(name, LARGE_SIZE)
    scalar = paper_config(name, seed=SEED)
    batched = paper_config(name, seed=SEED)
    scalar_ingest(scalar, data)
    batched.update_batch(data)
    assert_equivalent(name, scalar, batched)


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_mixed_scalar_and_batch_bookkeeping(name: str) -> None:
    """Regression: ``_count``/``_min``/``_max`` are maintained exactly
    once per value when scalar and batch ingestion interleave (the old
    default path re-validated and re-counted inside ``_observe``)."""
    data = dataset(name, 900)
    sketch = paper_config(name, seed=SEED)
    scalar_ingest(sketch, data[:300])
    sketch.update_batch(data[300:700])
    scalar_ingest(sketch, data[700:])
    assert sketch.count == data.size
    assert sketch.min == float(data.min())
    assert sketch.max == float(data.max())
