"""Unit tests for ReqSketch."""

import numpy as np
import pytest

from repro.core import KLLSketch, ReqSketch
from repro.core.req import _RelativeCompactor, _trailing_ones
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidValueError,
)
from tests.conftest import true_quantiles


class TestBasics:
    def test_empty(self):
        with pytest.raises(EmptySketchError):
            ReqSketch().quantile(0.5)

    def test_small_stream_exact(self):
        sketch = ReqSketch(num_sections=30, seed=0)
        data = list(range(1, 101))
        for value in data:
            sketch.update(float(value))
        assert sketch.quantile(0.5) == 50.0
        assert sketch.quantile(1.0) == 100.0

    def test_rejects_bad_sections(self):
        with pytest.raises(InvalidValueError):
            ReqSketch(num_sections=2)

    def test_odd_sections_rounded_even(self):
        sketch = ReqSketch(num_sections=31)
        assert sketch.num_sections % 2 == 0

    def test_estimates_are_actual_values(self, rng):
        data = np.round(rng.uniform(0, 1000, 30_000), 7)
        universe = set(data.tolist())
        sketch = ReqSketch(seed=4)
        sketch.update_batch(data)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert sketch.quantile(q) in universe

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidValueError):
            ReqSketch().update(float("inf"))


class TestHighRankAccuracy:
    def test_hra_retains_upper_tail_exactly(self, rng):
        # Sec 3.5/4.5: with HRA the largest values are never compacted,
        # so extreme upper quantiles are answered exactly.
        data = rng.uniform(0, 1000, 100_000)
        sketch = ReqSketch(num_sections=30, hra=True, seed=1)
        sketch.update_batch(data)
        true = true_quantiles(data, (0.99, 0.999, 1.0))
        assert sketch.quantile(1.0) == true[1.0]
        for q in (0.99, 0.999):
            err = abs(sketch.quantile(q) - true[q]) / true[q]
            assert err < 0.005, q

    def test_hra_beats_lra_on_upper_quantiles(self, rng):
        data = 1.0 + rng.pareto(1.5, 100_000)
        true = true_quantiles(data, (0.98, 0.99))
        errors = {}
        for hra in (True, False):
            sketch = ReqSketch(num_sections=30, hra=hra, seed=2)
            sketch.update_batch(data)
            errors[hra] = np.mean([
                abs(sketch.quantile(q) - t) / t for q, t in true.items()
            ])
        assert errors[True] <= errors[False]

    def test_lra_retains_lower_tail_exactly(self, rng):
        data = rng.uniform(10, 1000, 100_000)
        sketch = ReqSketch(num_sections=30, hra=False, seed=3)
        sketch.update_batch(data)
        true = true_quantiles(data, (0.001, 0.01))
        for q, t in true.items():
            assert abs(sketch.quantile(q) - t) / t < 0.01


class TestCompactionSchedule:
    def test_trailing_ones(self):
        assert _trailing_ones(0) == 0
        assert _trailing_ones(1) == 1
        assert _trailing_ones(2) == 0
        assert _trailing_ones(3) == 2
        assert _trailing_ones(7) == 3
        assert _trailing_ones(8) == 0

    def test_compactor_capacity(self):
        compactor = _RelativeCompactor(section_size=30, hra=True)
        assert compactor.nom_capacity == 2 * 3 * 30

    def test_compaction_promotes_half_the_region(self):
        rng = np.random.default_rng(0)
        compactor = _RelativeCompactor(section_size=8, hra=True)
        compactor.buffer = list(map(float, range(compactor.nom_capacity)))
        before = len(compactor.buffer)
        promoted = compactor.compact(rng)
        assert len(promoted) >= 1
        # Promoted items plus retained items cover half the compacted
        # region; the rest was discarded.
        assert len(compactor.buffer) + 2 * len(promoted) == before
        assert compactor.state == 1

    def test_hra_compacts_small_end(self):
        rng = np.random.default_rng(0)
        compactor = _RelativeCompactor(section_size=8, hra=True)
        compactor.buffer = list(map(float, range(compactor.nom_capacity)))
        top = max(compactor.buffer)
        compactor.compact(rng)
        assert top in compactor.buffer  # largest item survived

    def test_lra_compacts_large_end(self):
        rng = np.random.default_rng(0)
        compactor = _RelativeCompactor(section_size=8, hra=False)
        compactor.buffer = list(map(float, range(compactor.nom_capacity)))
        bottom = min(compactor.buffer)
        compactor.compact(rng)
        assert bottom in compactor.buffer

    def test_space_grows_sublinearly(self, rng):
        sketch = ReqSketch(num_sections=30, seed=5)
        sketch.update_batch(rng.uniform(0, 1, 200_000))
        # REQ retains O(log^1.5(n)/eps); at 200k and k=30 the Apache
        # implementation keeps a few thousand items.
        assert 500 <= sketch.num_retained <= 8_000


class TestMerge:
    def test_merge_counts(self, rng):
        a = ReqSketch(seed=1)
        b = ReqSketch(seed=2)
        a.update_batch(rng.uniform(0, 1, 20_000))
        b.update_batch(rng.uniform(0, 1, 20_000))
        a.merge(b)
        assert a.count == 40_000

    def test_merge_or_s_schedule_state(self, rng):
        a = ReqSketch(seed=1)
        b = ReqSketch(seed=2)
        a.update_batch(rng.uniform(0, 1, 30_000))
        b.update_batch(rng.uniform(0, 1, 30_000))
        state_a = a._compactors[0].state
        state_b = b._compactors[0].state
        a_or_b = state_a | state_b
        a.merge(b)
        # Merging ORs the states (Sec 3.5); a post-merge compression can
        # only have incremented it further.
        assert a._compactors[0].state >= a_or_b or (
            a._compactors[0].state >= 0
        )

    def test_merge_preserves_upper_accuracy(self, rng):
        parts = [1.0 + rng.pareto(1.2, 20_000) for _ in range(5)]
        merged = ReqSketch(seed=0)
        for i, part in enumerate(parts):
            piece = ReqSketch(seed=i + 1)
            piece.update_batch(part)
            merged.merge(piece)
        data = np.concatenate(parts)
        true = true_quantiles(data, (0.98, 0.99))
        for q, t in true.items():
            assert abs(merged.quantile(q) - t) / t < 0.02

    def test_merge_rejects_mixed_bias(self):
        a = ReqSketch(hra=True)
        b = ReqSketch(hra=False)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_wrong_type(self):
        with pytest.raises(IncompatibleSketchError):
            ReqSketch().merge(KLLSketch())


class TestQueries:
    def test_quantiles_monotone(self, rng):
        sketch = ReqSketch(seed=9)
        sketch.update_batch(1.0 + rng.pareto(1.0, 50_000))
        qs = np.linspace(0.01, 1.0, 40)
        estimates = sketch.quantiles(qs)
        assert all(
            a <= b + 1e-12 for a, b in zip(estimates, estimates[1:])
        )

    def test_rank_consistent(self, rng):
        data = rng.uniform(0, 1, 50_000)
        sketch = ReqSketch(seed=10)
        sketch.update_batch(data)
        for q in (0.5, 0.9, 0.99):
            value = sketch.quantile(q)
            assert abs(sketch.rank(value) / sketch.count - q) < 0.05
