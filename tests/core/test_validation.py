"""Tests for the sketch conformance checker."""

import pytest

from repro.core import SKETCH_CLASSES, paper_config
from repro.core.base import QuantileSketch
from repro.core.validation import check_conformance
from repro.errors import EmptySketchError

#: Sketches checkable on an unbounded uniform stream.  GK's per-item
#: insert is too slow for the default n; DCS needs a bounded universe
#: (checked separately with a fitting value_range).
CHECKED = sorted(set(SKETCH_CLASSES) - {"gk", "dcs"})


class TestLibrarySketchesConform:
    @pytest.mark.parametrize("name", CHECKED)
    def test_every_sketch_passes(self, name):
        report = check_conformance(
            lambda: paper_config(name, seed=1), n=20_000
        )
        assert report.ok, "\n" + str(report)

    def test_gk_passes_at_reduced_size(self):
        report = check_conformance(
            lambda: paper_config("gk"), n=3_000
        )
        assert report.ok, "\n" + str(report)

    def test_dcs_passes_inside_its_universe(self):
        # DCS floors values to its integer universe, so raw-stream
        # min/max tracking deviates by design; every behavioural check
        # must still pass on a wide range.
        report = check_conformance(
            lambda: paper_config("dcs", seed=1),
            n=20_000,
            value_range=(0.0, float((1 << 20) - 1)),
            skip={"count/min/max bookkeeping"},
        )
        assert report.ok, "\n" + str(report)


class TestCheckerCatchesBrokenSketches:
    def test_flags_biased_quantiles(self):
        class Biased(QuantileSketch):
            """Always answers the maximum."""

            def update(self, value):
                self._observe(float(value))

            def merge(self, other):
                self._merge_bookkeeping(other)

            def quantile(self, q):
                self._require_nonempty()
                return self._max

            def size_bytes(self):
                return 24

        report = check_conformance(Biased, n=2_000)
        assert not report.ok
        failed = {check.name for check in report.failures}
        assert "accuracy budget" in failed

    def test_flags_broken_count(self):
        class MiscountingDD(QuantileSketch):
            def __init__(self):
                super().__init__()
                from repro.core import DDSketch
                self._inner = DDSketch()

            def update(self, value):
                self._inner.update(value)
                self._observe(float(value))
                self._count += 1  # double counting bug

            def merge(self, other):
                self._inner.merge(other._inner)
                self._merge_bookkeeping(other)

            def quantile(self, q):
                return self._inner.quantile(q)

            def size_bytes(self):
                return self._inner.size_bytes()

        report = check_conformance(MiscountingDD, n=1_000)
        assert not report.ok
        failed = {check.name for check in report.failures}
        assert "count/min/max bookkeeping" in failed

    def test_flags_empty_sketch_that_answers(self):
        class NeverEmpty(QuantileSketch):
            def update(self, value):
                self._observe(float(value))

            def merge(self, other):
                self._merge_bookkeeping(other)

            def quantile(self, q):
                return 0.0  # answers even when empty

            def size_bytes(self):
                return 8

        report = check_conformance(NeverEmpty, n=1_000)
        failed = {check.name for check in report.failures}
        assert "empty-sketch behaviour" in failed

    def test_report_renders(self):
        from repro.core import DDSketch

        report = check_conformance(DDSketch, n=2_000)
        text = str(report)
        assert "[PASS]" in text
        assert report.failures == []
