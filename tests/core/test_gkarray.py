"""Unit tests for GKArray (buffered Greenwald-Khanna)."""

import numpy as np
import pytest

from repro.core import GKArray, GKSketch, dumps, loads
from repro.errors import IncompatibleSketchError, InvalidValueError


class TestBasics:
    def test_validation(self):
        with pytest.raises(InvalidValueError):
            GKArray(epsilon=0.6)
        with pytest.raises(InvalidValueError):
            GKArray(buffer_size=0)
        with pytest.raises(InvalidValueError):
            GKArray().update(float("nan"))

    def test_default_buffer_tracks_epsilon(self):
        assert GKArray(epsilon=0.01).buffer_size == 50
        assert GKArray(epsilon=0.001).buffer_size == 500

    def test_small_stream_exact(self):
        sketch = GKArray(epsilon=0.05)
        for value in range(1, 101):
            sketch.update(float(value))
        assert abs(sketch.quantile(0.5) - 50) <= 10


class TestAccuracy:
    def test_rank_error_guarantee(self, rng):
        data = rng.uniform(0, 1, 50_000)
        sketch = GKArray(epsilon=0.01)
        sketch.update_batch(data)
        s = np.sort(data)
        for q in (0.05, 0.25, 0.5, 0.75, 0.9, 0.99):
            est = sketch.quantile(q)
            rank = np.searchsorted(s, est, side="right") / s.size
            assert abs(rank - q) <= 0.02, q

    def test_matches_gk_accuracy(self, rng):
        data = rng.uniform(0, 1_000, 20_000)
        s = np.sort(data)
        array_sketch = GKArray(epsilon=0.01)
        array_sketch.update_batch(data)
        classic = GKSketch(epsilon=0.01)
        classic.update_batch(data)

        def mean_rank_error(sketch):
            errors = []
            for q in (0.25, 0.5, 0.75, 0.95):
                est = sketch.quantile(q)
                rank = np.searchsorted(s, est, side="right") / s.size
                errors.append(abs(rank - q))
            return float(np.mean(errors))

        assert mean_rank_error(array_sketch) <= (
            mean_rank_error(classic) + 0.01
        )

    def test_faster_ingest_than_classic_gk(self, rng):
        import time
        data = rng.uniform(0, 1, 30_000)
        fast = GKArray(epsilon=0.01)
        start = time.perf_counter()
        fast.update_batch(data)
        fast_time = time.perf_counter() - start
        slow = GKSketch(epsilon=0.01)
        start = time.perf_counter()
        slow.update_batch(data)
        slow_time = time.perf_counter() - start
        # The buffered sweep is the whole point of GKArray (Sec 5.1).
        assert fast_time < slow_time

    def test_space_sublinear(self, rng):
        sketch = GKArray(epsilon=0.01)
        sketch.update_batch(rng.uniform(0, 1, 100_000))
        sketch.quantile(0.5)  # force a flush
        assert sketch.num_tuples < 2_000


class TestLifecycle:
    def test_merge(self, rng):
        a, b = GKArray(0.02), GKArray(0.02)
        a.update_batch(rng.uniform(0, 1, 5_000))
        b.update_batch(rng.uniform(1, 2, 5_000))
        a.merge(b)
        assert a.count == 10_000
        assert a.quantile(0.25) < 1.0
        assert a.quantile(0.75) > 1.0

    def test_merge_with_buffered_other(self, rng):
        a, b = GKArray(0.02, buffer_size=100_000), GKArray(0.02, buffer_size=100_000)
        a.update_batch(rng.uniform(0, 1, 500))
        b.update_batch(rng.uniform(0, 1, 500))
        buffered_before = len(b._buffer)
        a.merge(b)
        assert a.count == 1_000
        # Other remains untouched (its buffer was copied, not flushed).
        assert len(b._buffer) == buffered_before

    def test_merge_wrong_type(self):
        with pytest.raises(IncompatibleSketchError):
            GKArray().merge(GKSketch())

    def test_serialization_round_trip(self, rng):
        sketch = GKArray(epsilon=0.02)
        sketch.update_batch(rng.uniform(0, 100, 10_000))
        restored = loads(dumps(sketch))
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == sketch.quantile(0.5)
