"""Registry-driven merge algebra: commutativity and associativity.

The cluster's read path merges per-origin sketches in whatever order
the origin map iterates, and anti-entropy assumes a merged view is
independent of which replica contributed first — so ``merge`` must be
commutative and associative *up to sketch error*, including between
operands at mismatched collapse/compaction levels (a freshly started
replica merging into one that has absorbed days of stream).

Operands are built deliberately lopsided: a small narrow-range sketch
against a large wide-range one that has forced UDDSketch collapses and
KLL/REQ compactions.  Deterministic sketches must agree exactly;
randomized ones within a rank tolerance against the combined stream.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.registry import SKETCH_CLASSES, paper_config

ALL_SKETCHES = sorted(SKETCH_CLASSES)

#: Sketches whose merge is a deterministic function of the operands
#: (bucket/moment addition), so answers must match exactly regardless
#: of merge order.
DETERMINISTIC = ("ddsketch", "uddsketch", "hdr", "exact")

QS = (0.05, 0.25, 0.5, 0.75, 0.95)

#: Rank tolerance for randomized sketches: generous against the
#: paper's ~1% targets, tight enough to catch double counting or a
#: dropped compactor level immediately.
RANK_TOL = 0.05

rng = np.random.default_rng(99)
SMALL = np.sort(rng.uniform(40.0, 60.0, 256))
LARGE = np.sort(rng.uniform(1.0, 1_000.0, 20_000))
MEDIUM = np.sort(rng.uniform(200.0, 400.0, 4_096))


def filled(name, data, seed=11):
    sketch = paper_config(name, seed=seed)
    sketch.update_batch(data)
    return sketch


def merged(left, right):
    out = copy.deepcopy(left)
    out.merge(copy.deepcopy(right))
    return out


def assert_rank_close(sketch, data, label):
    n = len(data)
    for q in QS:
        estimate = sketch.quantile(q)
        rank = np.searchsorted(data, estimate, side="right")
        assert abs(rank / n - q) <= RANK_TOL, (
            f"{label}: q={q} estimate={estimate} rank-error "
            f"{abs(rank / n - q):.4f}"
        )


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_merge_is_commutative_at_mismatched_levels(name):
    a, b = filled(name, SMALL), filled(name, LARGE)
    ab, ba = merged(a, b), merged(b, a)
    combined = np.sort(np.concatenate([SMALL, LARGE]))
    assert ab.count == ba.count == len(combined)
    # Extremes are tracked commutatively (DCS floors values into its
    # integer universe, so they match each other, not the raw data).
    assert ab.min == ba.min
    assert ab.max == ba.max
    for order, sketch in (("a+b", ab), ("b+a", ba)):
        assert_rank_close(sketch, combined, f"{name} {order}")
    if name in DETERMINISTIC:
        assert ab.quantiles(QS) == ba.quantiles(QS)


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_merge_is_associative_at_mismatched_levels(name):
    combined = np.sort(np.concatenate([SMALL, MEDIUM, LARGE]))
    left = merged(
        merged(filled(name, SMALL), filled(name, MEDIUM)),
        filled(name, LARGE),
    )
    right = merged(
        filled(name, SMALL),
        merged(filled(name, MEDIUM), filled(name, LARGE)),
    )
    assert left.count == right.count == len(combined)
    assert left.min == right.min
    assert left.max == right.max
    for order, sketch in ((" (a+b)+c", left), ("a+(b+c)", right)):
        assert_rank_close(sketch, combined, f"{name}{order}")
    if name in DETERMINISTIC:
        assert left.quantiles(QS) == right.quantiles(QS)


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_merging_an_empty_operand_is_identity_in_both_orders(name):
    a, empty = filled(name, SMALL), paper_config(name, seed=11)
    ae, ea = merged(a, empty), merged(empty, a)
    assert ae.count == ea.count == a.count
    assert ae.quantiles(QS) == a.quantiles(QS)
    assert ea.quantiles(QS) == a.quantiles(QS)


def test_uddsketch_operands_really_are_at_mismatched_collapse_levels():
    # The premise of the suite: the large operand has collapsed, the
    # small one has not — so the merge must reconcile resolutions.
    small, large = filled("uddsketch", SMALL), filled("uddsketch", LARGE)
    assert large._collapses > small._collapses


def test_kll_operands_really_are_at_mismatched_compaction_levels():
    small, large = filled("kll", SMALL), filled("kll", LARGE)
    assert len(large._compactors) > len(small._compactors)
