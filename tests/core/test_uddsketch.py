"""Unit tests for UDDSketch."""

import numpy as np
import pytest

from repro.core import DDSketch, UDDSketch
from repro.core.mapping import alpha_after_collapses, initial_alpha
from repro.errors import IncompatibleSketchError, InvalidValueError
from tests.conftest import true_quantiles


class TestConfiguration:
    def test_paper_configuration(self):
        sketch = UDDSketch(final_alpha=0.01, num_collapses=12,
                           max_buckets=1024)
        assert sketch.initial_alpha == pytest.approx(
            initial_alpha(0.01, 12)
        )
        assert sketch.initial_alpha < 1e-5
        assert sketch.max_buckets == 1024

    def test_direct_alpha0(self):
        sketch = UDDSketch(alpha0=0.005)
        assert sketch.initial_alpha == pytest.approx(0.005)

    def test_rejects_tiny_budget(self):
        with pytest.raises(InvalidValueError):
            UDDSketch(max_buckets=1)


class TestUniformCollapse:
    def test_collapses_when_over_budget(self, rng):
        sketch = UDDSketch(final_alpha=0.05, num_collapses=6,
                           max_buckets=64)
        sketch.update_batch(10.0 ** rng.uniform(-3, 3, 20_000))
        assert sketch.num_collapses > 0
        assert sketch.num_buckets <= 64
        assert sketch.count == 20_000

    def test_collapse_degrades_alpha_per_formula(self, rng):
        sketch = UDDSketch(final_alpha=0.05, num_collapses=6,
                           max_buckets=64)
        sketch.update_batch(10.0 ** rng.uniform(-3, 3, 20_000))
        expected = alpha_after_collapses(
            sketch.initial_alpha, sketch.num_collapses
        )
        assert sketch.alpha == pytest.approx(expected, rel=1e-9)

    def test_guarantee_tighter_than_final_before_budget_exhausted(
        self, rng
    ):
        sketch = UDDSketch(final_alpha=0.01, num_collapses=12,
                           max_buckets=1024)
        sketch.update_batch(1.0 + rng.pareto(1.0, 50_000))
        assert sketch.within_budget
        # Sec 4.5.5: the realised threshold is much lower than 0.01.
        assert sketch.current_guarantee < 0.01

    def test_error_within_current_guarantee(self, rng):
        data = 10.0 ** rng.uniform(-2, 4, 30_000)
        sketch = UDDSketch(final_alpha=0.01, num_collapses=12,
                           max_buckets=1024)
        sketch.update_batch(data)
        guarantee = sketch.current_guarantee
        for q, true in true_quantiles(
            data, (0.05, 0.25, 0.5, 0.9, 0.99)
        ).items():
            assert abs(sketch.quantile(q) - true) / true <= guarantee + 1e-9

    def test_tighter_guarantee_than_ddsketch_within_budget(
        self, pareto_data
    ):
        # Sec 4.5.5: UDDSketch's *realised* guarantee stays tighter than
        # DDSketch's nominal 1% until the collapse budget is consumed,
        # and its worst observed error respects that tighter bound.
        udd = UDDSketch()
        dds = DDSketch(alpha=0.01)
        udd.update_batch(pareto_data)
        dds.update_batch(pareto_data)
        assert udd.current_guarantee < dds.alpha
        true = true_quantiles(pareto_data, (0.25, 0.5, 0.75, 0.9, 0.99))
        worst_udd = max(
            abs(udd.quantile(q) - t) / t for q, t in true.items()
        )
        assert worst_udd <= udd.current_guarantee + 1e-9


class TestMerge:
    def test_merge_same_level(self, rng):
        a_data = rng.uniform(1, 100, 5_000)
        b_data = rng.uniform(1, 100, 5_000)
        a, b = UDDSketch(), UDDSketch()
        a.update_batch(a_data)
        b.update_batch(b_data)
        a.merge(b)
        single = UDDSketch()
        single.update_batch(np.concatenate([a_data, b_data]))
        assert a.count == single.count
        for q in (0.1, 0.5, 0.9):
            assert a.quantile(q) == pytest.approx(
                single.quantile(q), rel=1e-9
            )

    def test_merge_aligns_collapse_levels(self, rng):
        # One sketch has collapsed more; merging must coarsen the finer.
        fine = UDDSketch(final_alpha=0.05, num_collapses=8, max_buckets=512)
        coarse = UDDSketch(final_alpha=0.05, num_collapses=8, max_buckets=32)
        fine.update_batch(rng.uniform(1, 10, 5_000))
        coarse.update_batch(10.0 ** rng.uniform(-3, 3, 5_000))
        assert coarse.num_collapses > fine.num_collapses
        fine.merge(coarse)
        assert fine.count == 10_000
        assert fine._mapping.alpha == pytest.approx(
            max(coarse._mapping.alpha, fine._mapping.alpha)
        )

    def test_merge_leaves_other_unchanged_even_when_coarsening(self, rng):
        fine = UDDSketch(final_alpha=0.05, num_collapses=8, max_buckets=32)
        coarse = UDDSketch(final_alpha=0.05, num_collapses=8, max_buckets=512)
        fine.update_batch(10.0 ** rng.uniform(-3, 3, 5_000))
        coarse.update_batch(rng.uniform(1, 10, 5_000))
        # Here *other* (coarse var name notwithstanding) is finer.
        other_alpha_before = coarse._mapping.alpha
        other_buckets_before = coarse.num_buckets
        fine.merge(coarse)
        assert coarse._mapping.alpha == other_alpha_before
        assert coarse.num_buckets == other_buckets_before

    def test_merge_wrong_type(self):
        a = UDDSketch()
        b = DDSketch()
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_incompatible_initial_accuracy(self):
        a = UDDSketch(alpha0=0.01)
        b = UDDSketch(alpha0=0.013)  # not a power-collapse of 0.01
        a.update(1.0)
        b.update(1.0)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)


class TestCopy:
    def test_copy_independent(self, rng):
        sketch = UDDSketch()
        sketch.update_batch(rng.uniform(1, 10, 1_000))
        clone = sketch.copy()
        clone.update_batch(rng.uniform(100, 200, 1_000))
        assert sketch.count == 1_000
        assert clone.count == 2_000

    def test_copy_preserves_estimates(self, pareto_data):
        sketch = UDDSketch()
        sketch.update_batch(pareto_data)
        clone = sketch.copy()
        for q in (0.1, 0.5, 0.99):
            assert clone.quantile(q) == sketch.quantile(q)


class TestFootprint:
    def test_map_store_is_heavier_than_ddsketch(self, pareto_data):
        # Table 3: UDDSketch's 3-numbers-per-bucket map store makes it
        # the largest sketch.
        udd = UDDSketch()
        dds = DDSketch()
        udd.update_batch(pareto_data)
        dds.update_batch(pareto_data)
        assert udd.size_bytes() > dds.size_bytes()
