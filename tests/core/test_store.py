"""Unit tests for the bucket stores."""

import numpy as np
import pytest

from repro.core.store import (
    CollapsingLowestDenseStore,
    DenseStore,
    SparseStore,
)
from repro.errors import EmptySketchError, InvalidValueError

ALL_STORES = [
    DenseStore,
    lambda: CollapsingLowestDenseStore(max_bins=256),
    SparseStore,
]


@pytest.mark.parametrize("factory", ALL_STORES)
class TestStoreContract:
    """Behaviour every store must share."""

    def test_empty_store(self, factory):
        store = factory()
        assert store.is_empty
        assert store.total == 0
        assert store.num_buckets == 0
        assert list(store.items()) == []
        with pytest.raises(EmptySketchError):
            _ = store.min_index
        with pytest.raises(EmptySketchError):
            _ = store.max_index
        with pytest.raises(EmptySketchError):
            store.key_at_rank(0)

    def test_single_add(self, factory):
        store = factory()
        store.add(5)
        assert store.total == 1
        assert store.min_index == 5
        assert store.max_index == 5
        assert list(store.items()) == [(5, 1)]

    def test_add_with_count(self, factory):
        store = factory()
        store.add(3, 7)
        assert store.total == 7
        assert list(store.items()) == [(3, 7)]

    def test_add_zero_count_is_noop(self, factory):
        store = factory()
        store.add(3, 0)
        assert store.is_empty

    def test_negative_count_rejected(self, factory):
        store = factory()
        with pytest.raises(InvalidValueError):
            store.add(3, -1)

    def test_negative_indices(self, factory):
        store = factory()
        store.add(-10)
        store.add(-3)
        store.add(4)
        assert store.min_index == -10
        assert store.max_index == 4
        assert store.total == 3

    def test_items_sorted_ascending(self, factory):
        store = factory()
        rng = np.random.default_rng(2)
        for index in rng.integers(-50, 50, 200):
            store.add(int(index))
        indices = [i for i, _c in store.items()]
        assert indices == sorted(indices)

    def test_add_batch_equals_scalar_adds(self, factory):
        rng = np.random.default_rng(3)
        indices = rng.integers(-30, 30, 500)
        batched = factory()
        batched.add_batch(indices)
        scalar = factory()
        for index in indices:
            scalar.add(int(index))
        assert list(batched.items()) == list(scalar.items())
        assert batched.total == scalar.total

    def test_add_batch_empty(self, factory):
        store = factory()
        store.add_batch(np.zeros(0, dtype=np.int64))
        assert store.is_empty

    def test_key_at_rank_walks_cumulatively(self, factory):
        store = factory()
        store.add(0, 10)
        store.add(5, 10)
        store.add(9, 10)
        assert store.key_at_rank(0) == 0
        assert store.key_at_rank(9) == 0
        assert store.key_at_rank(10) == 5
        assert store.key_at_rank(19.5) == 5
        assert store.key_at_rank(20) == 9
        assert store.key_at_rank(29) == 9

    def test_merge(self, factory):
        a = factory()
        b = factory()
        a.add(1, 2)
        a.add(4, 1)
        b.add(1, 3)
        b.add(-2, 5)
        a.merge(b)
        assert a.total == 11
        assert dict(a.items()) == {-2: 5, 1: 5, 4: 1}
        # The source store is untouched.
        assert b.total == 8

    def test_merge_empty(self, factory):
        a = factory()
        a.add(3)
        a.merge(factory())
        assert a.total == 1

    def test_copy_is_independent(self, factory):
        store = factory()
        store.add(1, 4)
        clone = store.copy()
        clone.add(1, 1)
        clone.add(9, 2)
        assert store.total == 4
        assert clone.total == 7

    def test_size_bytes_positive_and_grows(self, factory):
        store = factory()
        empty_size = store.size_bytes()
        assert empty_size >= 0
        for index in range(200):
            store.add(index)
        assert store.size_bytes() > empty_size


class TestDenseStore:
    def test_grows_in_chunks(self):
        store = DenseStore()
        store.add(0)
        assert store._counts.size == 64
        store.add(100)
        assert store._counts.size % 64 == 0
        assert store._counts.size >= 101

    def test_merge_dense_fast_path_matches_generic(self):
        rng = np.random.default_rng(4)
        a1, a2 = DenseStore(), DenseStore()
        b = SparseStore()
        indices = rng.integers(-100, 100, 300)
        for index in indices:
            b.add(int(index))
            a2.add(int(index))
        dense_b = DenseStore()
        dense_b.add_batch(indices)
        a1.merge(dense_b)  # dense fast path
        assert list(a1.items()) == list(a2.items())


class TestCollapsingLowestDenseStore:
    def test_respects_bin_budget(self):
        store = CollapsingLowestDenseStore(max_bins=32)
        for index in range(500):
            store.add(index)
        assert store._counts.size <= 32
        assert store.is_collapsed
        assert store.total == 500

    def test_collapses_lowest_preserving_total(self):
        store = CollapsingLowestDenseStore(max_bins=16)
        for index in range(64):
            store.add(index, 2)
        assert store.total == 128
        # Everything below the floor folded into the lowest bucket.
        assert store.min_index == 64 - 16
        lowest_count = dict(store.items())[store.min_index]
        assert lowest_count == 2 * (64 - 16 + 1)

    def test_low_adds_after_collapse_go_to_floor(self):
        store = CollapsingLowestDenseStore(max_bins=8)
        for index in range(20):
            store.add(index)
        floor = store.min_index
        store.add(-100, 5)
        assert store.total == 25
        assert store.min_index == floor

    def test_high_quantile_buckets_unaffected_by_collapse(self):
        bounded = CollapsingLowestDenseStore(max_bins=16)
        unbounded = DenseStore()
        rng = np.random.default_rng(5)
        for index in rng.integers(0, 100, 1000):
            bounded.add(int(index))
            unbounded.add(int(index))
        # The top of the distribution is identical.
        top_b = [(i, c) for i, c in bounded.items() if i >= 90]
        top_u = [(i, c) for i, c in unbounded.items() if i >= 90]
        assert top_b == top_u

    def test_rejects_bad_budget(self):
        with pytest.raises(InvalidValueError):
            CollapsingLowestDenseStore(max_bins=0)


class TestSparseStore:
    def test_uniform_collapse_halves_resolution(self):
        store = SparseStore()
        for index in range(-6, 7):
            store.add(index, 1)
        total = store.total
        store.uniform_collapse()
        assert store.total == total
        # ceil(i/2) for i in [-6, 6] covers [-3, 3].
        assert store.min_index == -3
        assert store.max_index == 3

    def test_uniform_collapse_pairing(self):
        store = SparseStore()
        store.add(1, 10)
        store.add(2, 20)
        store.add(3, 1)
        store.add(4, 2)
        store.uniform_collapse()
        assert dict(store.items()) == {1: 30, 2: 3}

    def test_uniform_collapse_negative_pairing(self):
        store = SparseStore()
        store.add(-1, 5)
        store.add(0, 7)
        store.add(-3, 1)
        store.add(-2, 2)
        store.uniform_collapse()
        # (-1, 0) -> 0 and (-3, -2) -> -1.
        assert dict(store.items()) == {0: 12, -1: 3}

    def test_size_accounts_three_numbers_per_bucket(self):
        store = SparseStore()
        for index in range(10):
            store.add(index)
        assert store.size_bytes() == 24 * 10 + 8
