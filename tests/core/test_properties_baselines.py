"""Property-based tests for the related-work baseline sketches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DyadicCountSketch,
    GKSketch,
    HdrHistogram,
    RandomSketch,
    TDigest,
    dumps,
    loads,
)

positive_floats = st.floats(
    min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(positive_floats, min_size=1, max_size=200)
int_keys = st.lists(
    st.integers(min_value=0, max_value=(1 << 12) - 1),
    min_size=1, max_size=200,
)


class TestHdrProperties:
    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_precision_guarantee_above_grid(self, values):
        # For values >= 1000 the integer grid is finer than the 2-digit
        # precision, so the significant-digits bound applies cleanly.
        values = [v + 1_000.0 for v in values]
        sketch = HdrHistogram(significant_digits=2)
        sketch.update_batch(values)
        s = sorted(values)
        for q in (0.25, 0.5, 0.9, 1.0):
            est = sketch.quantile(q)
            true = s[max(int(np.ceil(q * len(s))), 1) - 1]
            assert abs(est - true) / true < 0.02

    @given(a=value_lists, b=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        merged = HdrHistogram()
        merged.update_batch(a)
        other = HdrHistogram()
        other.update_batch(b)
        merged.merge(other)
        single = HdrHistogram()
        single.update_batch(a + b)
        for q in (0.25, 0.5, 0.9):
            assert merged.quantile(q) == single.quantile(q)

    @given(values=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, values):
        sketch = HdrHistogram()
        sketch.update_batch(values)
        restored = loads(dumps(sketch))
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == sketch.quantile(0.5)


class TestDcsProperties:
    @given(keys=int_keys)
    @settings(max_examples=50, deadline=None)
    def test_insert_then_delete_all_leaves_empty_counts(self, keys):
        sketch = DyadicCountSketch(universe_log2=12, seed=0)
        values = np.asarray(keys, dtype=np.float64)
        sketch.update_batch(values)
        sketch.delete_batch(values)
        assert sketch.count == 0

    @given(keys=int_keys)
    @settings(max_examples=50, deadline=None)
    def test_rank_monotone(self, keys):
        sketch = DyadicCountSketch(universe_log2=12, seed=0)
        sketch.update_batch(np.asarray(keys, dtype=np.float64))
        ranks = [sketch.rank(float(x)) for x in (0, 1 << 10, 1 << 11, 1 << 12)]
        assert ranks == sorted(ranks)

    @given(keys=int_keys)
    @settings(max_examples=30, deadline=None)
    def test_exact_levels_make_small_universes_exact(self, keys):
        # With the whole tree under the exact threshold DCS is exact.
        sketch = DyadicCountSketch(
            universe_log2=12, exact_threshold=1 << 12, seed=0
        )
        values = np.asarray(keys, dtype=np.float64)
        sketch.update_batch(values)
        s = np.sort(values)
        for q in (0.25, 0.5, 1.0):
            est = sketch.quantile(q)
            true = s[max(int(np.ceil(q * s.size)), 1) - 1]
            assert est == true

    @given(keys=int_keys)
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, keys):
        sketch = DyadicCountSketch(universe_log2=12, seed=3)
        sketch.update_batch(np.asarray(keys, dtype=np.float64))
        restored = loads(dumps(sketch))
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == sketch.quantile(0.5)


class TestRandomSketchProperties:
    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_estimates_from_stream(self, values):
        sketch = RandomSketch(num_buffers=4, buffer_size=16, seed=0)
        sketch.update_batch(values)
        universe = set(values)
        for q in (0.25, 0.5, 0.9):
            assert sketch.quantile(q) in universe

    @given(values=st.lists(positive_floats, min_size=1, max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_space_bound(self, values):
        sketch = RandomSketch(num_buffers=4, buffer_size=16, seed=1)
        sketch.update_batch(values)
        assert sketch.num_retained <= 4 * 16

    @given(values=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, values):
        sketch = RandomSketch(num_buffers=4, buffer_size=16, seed=2)
        sketch.update_batch(values)
        restored = loads(dumps(sketch))
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == sketch.quantile(0.5)


class TestGKAndTDigestProperties:
    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_gk_rank_guarantee(self, values):
        # A repeated value occupies a *range* of ranks; the guarantee
        # holds if any rank of the returned value is within 2*eps.
        sketch = GKSketch(epsilon=0.1)
        sketch.update_batch(values)
        s = np.sort(np.asarray(values))
        n = s.size
        for q in (0.25, 0.5, 0.9):
            est = sketch.quantile(q)
            lo = (np.searchsorted(s, est, side="left") + 1) / n
            hi = np.searchsorted(s, est, side="right") / n
            distance = max(lo - q, q - hi, 0.0)
            assert distance <= 0.2 + 1.0 / n

    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_tdigest_extremes_exact(self, values):
        sketch = TDigest(compression=50)
        sketch.update_batch(values)
        assert sketch.quantile(1.0) == max(values)
        assert sketch.quantile(1e-9) == min(values)
