"""Tests for the full Sec 3.2 Moments Sketch (joint log moments)."""

import numpy as np
import pytest

from repro.core import MomentsSketch, dumps, loads
from repro.errors import IncompatibleSketchError, InvalidValueError
from tests.conftest import true_quantiles


class TestConfiguration:
    def test_log_moments_excludes_transform(self):
        with pytest.raises(InvalidValueError):
            MomentsSketch(transform="log", log_moments=True)

    def test_log_moments_requires_positive(self):
        sketch = MomentsSketch(log_moments=True)
        with pytest.raises(InvalidValueError):
            sketch.update(-1.0)
        with pytest.raises(InvalidValueError):
            sketch.update_batch([1.0, 0.0])

    def test_size_roughly_doubles(self, rng):
        plain = MomentsSketch(num_moments=12)
        full = MomentsSketch(num_moments=12, log_moments=True)
        data = rng.uniform(1, 10, 1_000)
        plain.update_batch(data)
        full.update_batch(data)
        assert full.size_bytes() > 1.5 * plain.size_bytes()
        assert full.size_bytes() < 2.5 * plain.size_bytes()


class TestJointAccuracy:
    def test_handles_heavy_tails_without_manual_transform(self, rng):
        # The whole point of the log moments: Pareto-range data works
        # without the caller knowing to pick a log transform.
        data = 1.0 + rng.pareto(1.0, 100_000)
        plain = MomentsSketch(num_moments=12, transform="none")
        joint = MomentsSketch(num_moments=12, log_moments=True)
        plain.update_batch(data)
        joint.update_batch(data)
        true = true_quantiles(data, (0.25, 0.5, 0.9, 0.99))
        plain_err = np.mean([
            abs(plain.quantile(q) - t) / t for q, t in true.items()
        ])
        joint_err = np.mean([
            abs(joint.quantile(q) - t) / t for q, t in true.items()
        ])
        assert joint_err < 0.05
        assert joint_err < plain_err / 10

    def test_matches_log_transform_quality(self, rng):
        data = 1.0 + rng.pareto(1.5, 100_000)
        logged = MomentsSketch(num_moments=12, transform="log")
        joint = MomentsSketch(num_moments=12, log_moments=True)
        logged.update_batch(data)
        joint.update_batch(data)
        true = true_quantiles(data, (0.25, 0.5, 0.9, 0.98))
        for q, t in true.items():
            assert abs(joint.quantile(q) - t) / t < (
                abs(logged.quantile(q) - t) / t + 0.02
            )

    def test_still_good_on_narrow_data(self, rng):
        data = rng.uniform(50, 60, 50_000)
        joint = MomentsSketch(num_moments=12, log_moments=True)
        joint.update_batch(data)
        for q, t in true_quantiles(data, (0.25, 0.5, 0.9)).items():
            assert abs(joint.quantile(q) - t) / t < 0.01

    def test_rank_consistent(self, rng):
        data = 1.0 + rng.pareto(1.0, 50_000)
        joint = MomentsSketch(num_moments=12, log_moments=True)
        joint.update_batch(data)
        s = np.sort(data)
        for q in (0.25, 0.5, 0.9):
            value = float(s[int(q * s.size)])
            assert abs(joint.rank(value) / joint.count - q) < 0.03


class TestLifecycle:
    def test_merge_combines_both_moment_sets(self, rng):
        a = MomentsSketch(num_moments=8, log_moments=True)
        b = MomentsSketch(num_moments=8, log_moments=True)
        data_a = 1.0 + rng.pareto(1.0, 20_000)
        data_b = 1.0 + rng.pareto(1.0, 20_000)
        a.update_batch(data_a)
        b.update_batch(data_b)
        a.merge(b)
        single = MomentsSketch(num_moments=8, log_moments=True)
        single.update_batch(np.concatenate([data_a, data_b]))
        assert np.allclose(a._log_power_sums, single._log_power_sums)
        assert a.quantile(0.5) == pytest.approx(
            single.quantile(0.5), rel=1e-6
        )

    def test_merge_rejects_mixed_configs(self):
        with pytest.raises(IncompatibleSketchError):
            MomentsSketch(log_moments=True).merge(MomentsSketch())

    def test_serialization_round_trip(self, rng):
        sketch = MomentsSketch(num_moments=10, log_moments=True)
        sketch.update_batch(1.0 + rng.pareto(1.0, 30_000))
        restored = loads(dumps(sketch))
        assert restored.log_moments
        assert restored.quantile(0.9) == pytest.approx(
            sketch.quantile(0.9), rel=1e-9
        )
        assert restored.size_bytes() == sketch.size_bytes()

    def test_scalar_updates_match_batch(self):
        a = MomentsSketch(num_moments=6, log_moments=True)
        b = MomentsSketch(num_moments=6, log_moments=True)
        values = [1.5, 2.5, 10.0, 0.3, 7.7]
        for value in values:
            a.update(value)
        b.update_batch(values)
        assert np.allclose(a._log_power_sums, b._log_power_sums)
