"""Unit tests for the Moments Sketch."""

import numpy as np
import pytest

from repro.core import KLLSketch, MomentsSketch
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidValueError,
)
from tests.conftest import true_quantiles


class TestBasics:
    def test_empty(self):
        with pytest.raises(EmptySketchError):
            MomentsSketch().quantile(0.5)

    def test_constant_size(self, rng):
        # Sec 4.3: fewer than 20 numbers at k = 12, independent of n.
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(rng.uniform(1, 10, 1_000))
        small = sketch.size_bytes()
        sketch.update_batch(rng.uniform(1, 10, 100_000))
        assert sketch.size_bytes() == small
        assert small <= 20 * 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidValueError):
            MomentsSketch(num_moments=1)
        with pytest.raises(InvalidValueError):
            MomentsSketch(transform="sqrt")

    def test_power_sums_accumulate(self):
        # Sums are accumulated around the first observed value (the
        # cancellation-avoiding origin shift): with origin 1, the
        # centred values of [1, 2, 3] are [0, 1, 2].
        sketch = MomentsSketch(num_moments=3)
        sketch.update_batch([1.0, 2.0, 3.0])
        sums = sketch.power_sums
        assert sums[0] == 3
        assert sums[1] == pytest.approx(0 + 1 + 2)
        assert sums[2] == pytest.approx(0 + 1 + 4)
        assert sums[3] == pytest.approx(0 + 1 + 8)

    def test_update_equals_batch(self):
        a = MomentsSketch()
        b = MomentsSketch()
        values = [1.5, 2.5, 10.0, 0.3, 7.7]
        for value in values:
            a.update(value)
        b.update_batch(values)
        assert np.allclose(a.power_sums, b.power_sums)

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidValueError):
            MomentsSketch().update(float("nan"))


class TestDegenerateStreams:
    def test_below_min_cardinality_falls_back_to_range(self):
        sketch = MomentsSketch()
        sketch.update_batch([5.0, 6.0])
        assert sketch.quantile(0.25) == 5.0
        assert sketch.quantile(0.9) == 6.0

    def test_constant_stream(self):
        sketch = MomentsSketch()
        sketch.update_batch(np.full(100, 3.25))
        assert sketch.quantile(0.5) == 3.25
        assert sketch.quantile(0.99) == 3.25


class TestAccuracy:
    def test_accurate_on_smooth_distribution(self, rng):
        # Moments excels on data matching a smooth density (Sec 4.5.1).
        data = rng.normal(100.0, 15.0, 100_000)
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(data)
        for q, true in true_quantiles(
            data, (0.05, 0.25, 0.5, 0.75, 0.95)
        ).items():
            assert abs(sketch.quantile(q) - true) / abs(true) < 0.01, q

    def test_accurate_on_uniform(self, uniform_data):
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(uniform_data)
        for q, true in true_quantiles(
            uniform_data, (0.25, 0.5, 0.9, 0.99)
        ).items():
            assert abs(sketch.quantile(q) - true) / true < 0.01

    def test_log_transform_needed_for_pareto(self, rng):
        # Sec 4.2: wide-range data gets a log transform.
        data = 1.0 + rng.pareto(1.0, 50_000)
        plain = MomentsSketch(num_moments=12, transform="none")
        logged = MomentsSketch(num_moments=12, transform="log")
        plain.update_batch(data)
        logged.update_batch(data)
        true = true_quantiles(data, (0.5, 0.9))
        err_plain = np.mean([
            abs(plain.quantile(q) - t) / t for q, t in true.items()
        ])
        err_logged = np.mean([
            abs(logged.quantile(q) - t) / t for q, t in true.items()
        ])
        assert err_logged < err_plain

    def test_arcsinh_transform_handles_negatives(self, rng):
        data = rng.normal(0.0, 100.0, 50_000)
        sketch = MomentsSketch(num_moments=10, transform="arcsinh")
        sketch.update_batch(data)
        true = true_quantiles(data, (0.25, 0.75))
        for q, t in true.items():
            assert abs(sketch.quantile(q) - t) / abs(t) < 0.05

    def test_log_transform_rejects_nonpositive(self):
        sketch = MomentsSketch(transform="log")
        with pytest.raises(InvalidValueError):
            sketch.update_batch([1.0, -2.0])

    def test_struggles_on_bimodal_mid_quantiles(self, rng):
        # Sec 4.5.4: the Power data's bimodal shape defeats the
        # max-entropy fit between the humps.
        data = np.concatenate([
            rng.normal(0.3, 0.05, 50_000),
            rng.normal(1.5, 0.2, 50_000),
        ])
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(data)
        true = true_quantiles(data, (0.5,))[0.5]
        mid_error = abs(sketch.quantile(0.5) - true) / true
        smooth = rng.normal(1.0, 0.2, 100_000)
        smooth_sketch = MomentsSketch(num_moments=12)
        smooth_sketch.update_batch(smooth)
        smooth_true = true_quantiles(smooth, (0.5,))[0.5]
        smooth_error = abs(
            smooth_sketch.quantile(0.5) - smooth_true
        ) / smooth_true
        assert mid_error > smooth_error

    def test_more_moments_help(self, rng):
        data = rng.gamma(3.0, 2.0, 100_000)
        true = true_quantiles(data, (0.25, 0.5, 0.75))
        errors = {}
        for k in (4, 12):
            sketch = MomentsSketch(num_moments=k)
            sketch.update_batch(data)
            errors[k] = np.mean([
                abs(sketch.quantile(q) - t) / t for q, t in true.items()
            ])
        assert errors[12] <= errors[4]


class TestMerge:
    def test_merge_is_exact(self, rng):
        a_data = rng.uniform(1, 10, 10_000)
        b_data = rng.uniform(5, 50, 10_000)
        a, b = MomentsSketch(), MomentsSketch()
        a.update_batch(a_data)
        b.update_batch(b_data)
        a.merge(b)
        single = MomentsSketch()
        single.update_batch(np.concatenate([a_data, b_data]))
        assert np.allclose(a.power_sums, single.power_sums)
        assert a.quantile(0.5) == pytest.approx(
            single.quantile(0.5), rel=1e-6
        )

    def test_merge_rejects_mismatched_config(self):
        with pytest.raises(IncompatibleSketchError):
            MomentsSketch(num_moments=10).merge(MomentsSketch(num_moments=12))
        with pytest.raises(IncompatibleSketchError):
            MomentsSketch(transform="log").merge(
                MomentsSketch(transform="none")
            )
        with pytest.raises(IncompatibleSketchError):
            MomentsSketch().merge(KLLSketch())


class TestQueryMechanics:
    def test_quantiles_batch_reuses_solution(self, rng):
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(rng.uniform(1, 10, 10_000))
        estimates = sketch.quantiles((0.1, 0.5, 0.9))
        assert estimates[0] <= estimates[1] <= estimates[2]

    def test_estimates_within_observed_range(self, rng):
        sketch = MomentsSketch(num_moments=12)
        data = rng.gamma(2.0, 3.0, 20_000)
        sketch.update_batch(data)
        assert sketch.min <= sketch.quantile(0.001) <= sketch.max
        assert sketch.min <= sketch.quantile(1.0) <= sketch.max

    def test_rank_tracks_cdf(self, rng):
        data = rng.normal(50, 5, 50_000)
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(data)
        s = np.sort(data)
        for q in (0.25, 0.5, 0.75):
            value = float(s[int(q * s.size)])
            assert abs(sketch.rank(value) / sketch.count - q) < 0.02


class TestNumericalStability:
    def test_offset_data_at_k12(self, rng):
        # Zero-origin power sums of U(50, 60) lose ~12 digits in the
        # rescaling at k = 12; the origin-shifted accumulation keeps
        # the fit accurate.
        data = rng.uniform(50, 60, 50_000)
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(data)
        for q, true in true_quantiles(data, (0.25, 0.5, 0.9)).items():
            assert abs(sketch.quantile(q) - true) / true < 0.01, q

    def test_large_offset_small_spread(self, rng):
        data = rng.normal(10_000.0, 1.0, 50_000)
        sketch = MomentsSketch(num_moments=10)
        sketch.update_batch(data)
        true = true_quantiles(data, (0.5,))[0.5]
        assert abs(sketch.quantile(0.5) - true) / true < 0.001

    def test_merge_recenters_across_origins(self, rng):
        # The two halves see different first values, hence different
        # origins; merging must recentre exactly.
        low = rng.uniform(50, 55, 20_000)
        high = rng.uniform(55, 60, 20_000)
        a = MomentsSketch(num_moments=10)
        b = MomentsSketch(num_moments=10)
        a.update_batch(low)
        b.update_batch(high)
        assert a._origin != b._origin
        a.merge(b)
        single = MomentsSketch(num_moments=10)
        single.update_batch(np.concatenate([low, high]))
        for q in (0.25, 0.5, 0.9):
            assert a.quantile(q) == pytest.approx(
                single.quantile(q), rel=1e-6
            )

    def test_merge_into_empty_adopts_origin(self, rng):
        empty = MomentsSketch(num_moments=8)
        full = MomentsSketch(num_moments=8)
        full.update_batch(rng.uniform(10, 20, 1_000))
        empty.merge(full)
        assert empty._origin == full._origin
        assert empty.quantile(0.5) == full.quantile(0.5)
