"""Unit tests for the HDR histogram baseline."""

import numpy as np
import pytest

from repro.core import DDSketch, HdrHistogram
from repro.errors import IncompatibleSketchError, InvalidValueError
from tests.conftest import true_quantiles


class TestConfiguration:
    def test_rejects_bad_digits(self):
        with pytest.raises(InvalidValueError):
            HdrHistogram(significant_digits=0)
        with pytest.raises(InvalidValueError):
            HdrHistogram(significant_digits=5)

    def test_rejects_bad_range(self):
        with pytest.raises(InvalidValueError):
            HdrHistogram(highest_trackable_value=1.0)

    def test_footprint_fixed_up_front(self, rng):
        # HDR allocates the whole array at construction (the trait the
        # paper contrasts with DDSketch's adaptive stores).
        sketch = HdrHistogram()
        empty = sketch.size_bytes()
        sketch.update_batch(rng.uniform(100, 10_000, 50_000))
        assert sketch.size_bytes() == empty


class TestDomain:
    def test_rejects_negative(self):
        with pytest.raises(InvalidValueError):
            HdrHistogram().update(-1.0)

    def test_rejects_above_range(self):
        sketch = HdrHistogram(highest_trackable_value=1_000.0)
        with pytest.raises(InvalidValueError):
            sketch.update(2_000.0)
        with pytest.raises(InvalidValueError):
            sketch.update_batch(np.asarray([1.0, 2_000.0]))

    def test_zero_recorded(self):
        sketch = HdrHistogram()
        sketch.update(0.0)
        assert sketch.count == 1


class TestPrecision:
    def test_significant_digits_guarantee(self, rng):
        # Values >> 1 unit reproduce within ~10^-digits relative error.
        sketch = HdrHistogram(significant_digits=2)
        values = 10.0 ** rng.uniform(3, 8, 30_000)
        sketch.update_batch(values)
        for q, true in true_quantiles(
            values, (0.05, 0.5, 0.95, 0.99)
        ).items():
            est = sketch.quantile(q)
            assert abs(est - true) / true < 0.01, q

    def test_more_digits_more_precision(self, rng):
        values = 10.0 ** rng.uniform(3, 6, 20_000)
        errors = {}
        for digits in (1, 3):
            sketch = HdrHistogram(significant_digits=digits)
            sketch.update_batch(values)
            true = true_quantiles(values, (0.5,))[0.5]
            errors[digits] = abs(sketch.quantile(0.5) - true) / true
        assert errors[3] <= errors[1]

    def test_batch_equals_scalar(self, rng):
        values = rng.uniform(100, 100_000, 3_000)
        batched = HdrHistogram()
        batched.update_batch(values)
        scalar = HdrHistogram()
        for value in values:
            scalar.update(float(value))
        for q in (0.1, 0.5, 0.9):
            assert batched.quantile(q) == scalar.quantile(q)

    def test_unit_granularity_near_one(self, rng):
        # Inherent HDR behaviour: precision is relative to the integer
        # unit, so values near 1 resolve to the unit grid.
        sketch = HdrHistogram()
        sketch.update_batch(rng.uniform(1.0, 2.0, 1_000))
        assert 1.0 <= sketch.quantile(0.5) <= 2.0


class TestComparisonWithDDSketch:
    def test_ddsketch_handles_wider_dynamic_range_in_less_space(self, rng):
        # Sec 5.2.2 / Masson et al.: DDSketch is comparable on accuracy
        # but smaller, because HDR pre-allocates its full range.
        values = 10.0 ** rng.uniform(0, 8, 50_000)
        hdr = HdrHistogram(significant_digits=2)
        dds = DDSketch(alpha=0.01)
        hdr.update_batch(values)
        dds.update_batch(values)
        assert dds.size_bytes() < hdr.size_bytes()
        true = true_quantiles(values, (0.5, 0.99))
        for q, t in true.items():
            assert abs(dds.quantile(q) - t) / t <= 0.0101


class TestMerge:
    def test_merge_adds_counts(self, rng):
        a, b = HdrHistogram(), HdrHistogram()
        a.update_batch(rng.uniform(100, 1_000, 5_000))
        b.update_batch(rng.uniform(10_000, 50_000, 5_000))
        a.merge(b)
        assert a.count == 10_000
        assert a.quantile(0.25) < 1_000
        assert a.quantile(0.75) > 10_000

    def test_merge_requires_same_config(self):
        a = HdrHistogram(significant_digits=2)
        b = HdrHistogram(significant_digits=3)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)
        with pytest.raises(IncompatibleSketchError):
            a.merge(DDSketch())


class TestRank:
    def test_rank_tracks_position(self, rng):
        values = rng.uniform(1_000, 100_000, 20_000)
        sketch = HdrHistogram()
        sketch.update_batch(values)
        s = np.sort(values)
        for q in (0.25, 0.5, 0.75):
            value = float(s[int(q * s.size)])
            assert abs(sketch.rank(value) / sketch.count - q) < 0.02
