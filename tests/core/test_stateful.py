"""Stateful property tests: sketches vs an exact oracle.

A hypothesis state machine drives a sketch through arbitrary
interleavings of single updates, batch updates, merges of side
sketches, and serialization round-trips, checking after every step
that the sketch still agrees with an exact oracle within its
guarantee.  This is the strongest correctness net in the suite: it
exercises exactly the operation sequences a stream processor performs.
"""

import math

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import (
    DDSketch,
    ExactQuantiles,
    KLLSketch,
    UDDSketch,
    dumps,
    loads,
)

values_strategy = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
batches_strategy = st.lists(values_strategy, min_size=1, max_size=50)
quantile_strategy = st.floats(min_value=0.01, max_value=1.0)


def exact_quantile(sorted_values: list[float], q: float) -> float:
    return sorted_values[max(math.ceil(q * len(sorted_values)), 1) - 1]


class DDSketchMachine(RuleBasedStateMachine):
    """DDSketch must never exceed its alpha, whatever we do to it."""

    def __init__(self) -> None:
        super().__init__()
        self.sketch = DDSketch(alpha=0.02)
        self.oracle: list[float] = []

    @rule(value=values_strategy)
    def update_one(self, value):
        self.sketch.update(value)
        self.oracle.append(value)

    @rule(batch=batches_strategy)
    def update_many(self, batch):
        self.sketch.update_batch(batch)
        self.oracle.extend(batch)

    @rule(batch=batches_strategy)
    def merge_side_sketch(self, batch):
        side = DDSketch(alpha=0.02)
        side.update_batch(batch)
        self.sketch.merge(side)
        self.oracle.extend(batch)

    @rule()
    def serialize_round_trip(self):
        self.sketch = loads(dumps(self.sketch))

    @precondition(lambda self: self.oracle)
    @rule(q=quantile_strategy)
    def check_quantile(self, q):
        true = exact_quantile(sorted(self.oracle), q)
        est = self.sketch.quantile(q)
        assert abs(est - true) / true <= 0.02 + 1e-9

    @invariant()
    def count_matches(self):
        assert self.sketch.count == len(self.oracle)

    @invariant()
    def min_max_match(self):
        if self.oracle:
            assert self.sketch.min == min(self.oracle)
            assert self.sketch.max == max(self.oracle)


class UDDSketchMachine(RuleBasedStateMachine):
    """UDDSketch's *current* guarantee must hold through collapses."""

    def __init__(self) -> None:
        super().__init__()
        self.sketch = UDDSketch(
            final_alpha=0.05, num_collapses=6, max_buckets=32
        )
        self.oracle: list[float] = []

    @rule(batch=batches_strategy)
    def update_many(self, batch):
        self.sketch.update_batch(batch)
        self.oracle.extend(batch)

    @rule(batch=batches_strategy)
    def merge_side_sketch(self, batch):
        side = UDDSketch(final_alpha=0.05, num_collapses=6,
                         max_buckets=32)
        side.update_batch(batch)
        self.sketch.merge(side)
        self.oracle.extend(batch)

    @rule()
    def serialize_round_trip(self):
        self.sketch = loads(dumps(self.sketch))

    @precondition(lambda self: self.oracle)
    @rule(q=quantile_strategy)
    def check_quantile(self, q):
        true = exact_quantile(sorted(self.oracle), q)
        est = self.sketch.quantile(q)
        guarantee = self.sketch.current_guarantee
        assert abs(est - true) / true <= guarantee + 1e-9

    @invariant()
    def bucket_budget_respected(self):
        assert self.sketch.num_buckets <= 32


class KLLMachine(RuleBasedStateMachine):
    """KLL estimates stay actual stream values with bounded space."""

    def __init__(self) -> None:
        super().__init__()
        self.sketch = KLLSketch(max_compactor_size=32, seed=7)
        self.oracle: list[float] = []

    @rule(batch=batches_strategy)
    def update_many(self, batch):
        self.sketch.update_batch(batch)
        self.oracle.extend(batch)

    @rule(batch=batches_strategy)
    def merge_side_sketch(self, batch):
        side = KLLSketch(max_compactor_size=32, seed=11)
        side.update_batch(batch)
        self.sketch.merge(side)
        self.oracle.extend(batch)

    @rule()
    def serialize_round_trip(self):
        self.sketch = loads(dumps(self.sketch))

    @precondition(lambda self: self.oracle)
    @rule(q=quantile_strategy)
    def estimates_come_from_stream(self, q):
        assert self.sketch.quantile(q) in set(self.oracle)

    @invariant()
    def space_bounded(self):
        assert self.sketch.num_retained <= (
            self.sketch._total_capacity() + 64
        )

    @invariant()
    def count_matches(self):
        assert self.sketch.count == len(self.oracle)


class ExactOracleMachine(RuleBasedStateMachine):
    """The oracle itself must match numpy under all operations."""

    def __init__(self) -> None:
        super().__init__()
        self.sketch = ExactQuantiles()
        self.values: list[float] = []

    @rule(batch=batches_strategy)
    def update_many(self, batch):
        self.sketch.update_batch(batch)
        self.values.extend(batch)

    @rule(batch=batches_strategy)
    def merge_side(self, batch):
        side = ExactQuantiles()
        side.update_batch(batch)
        self.sketch.merge(side)
        self.values.extend(batch)

    @precondition(lambda self: self.values)
    @rule(q=quantile_strategy)
    def matches_definition(self, q):
        s = np.sort(np.asarray(self.values))
        expected = float(s[max(math.ceil(q * s.size), 1) - 1])
        assert self.sketch.quantile(q) == expected


_settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestDDSketchStateful = DDSketchMachine.TestCase
TestDDSketchStateful.settings = _settings
TestUDDSketchStateful = UDDSketchMachine.TestCase
TestUDDSketchStateful.settings = _settings
TestKLLStateful = KLLMachine.TestCase
TestKLLStateful.settings = _settings
TestExactOracleStateful = ExactOracleMachine.TestCase
TestExactOracleStateful.settings = _settings
