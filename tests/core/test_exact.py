"""Unit tests for the exact-quantiles baseline."""

import numpy as np
import pytest

from repro.core import ExactQuantiles, TDigest
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidQuantileError,
    InvalidValueError,
)


class TestExactQuantiles:
    def test_empty(self):
        with pytest.raises(EmptySketchError):
            ExactQuantiles().quantile(0.5)

    def test_paper_table1_example(self):
        # Table 1: the q-quantile is the item of rank ceil(qN).
        data = [3, 8, 11, 14, 16, 19, 25, 29, 30, 51]
        exact = ExactQuantiles()
        exact.update_batch(data)
        assert exact.quantile(0.1) == 3
        assert exact.quantile(0.5) == 16
        assert exact.quantile(0.9) == 30
        assert exact.quantile(1.0) == 51
        # 0.95 rounds up to rank 10.
        assert exact.quantile(0.95) == 51

    def test_rank_counts_less_or_equal(self):
        exact = ExactQuantiles()
        exact.update_batch([1.0, 2.0, 2.0, 3.0])
        assert exact.rank(0.5) == 0
        assert exact.rank(2.0) == 3
        assert exact.rank(3.0) == 4
        assert exact.rank(10.0) == 4

    def test_matches_numpy_on_random_data(self, rng):
        data = rng.normal(0, 1, 10_000)
        exact = ExactQuantiles()
        exact.update_batch(data)
        s = np.sort(data)
        for q in (0.01, 0.25, 0.5, 0.99):
            assert exact.quantile(q) == s[int(np.ceil(q * s.size)) - 1]

    def test_interleaved_updates_and_queries(self, rng):
        exact = ExactQuantiles()
        exact.update_batch(rng.uniform(0, 1, 100))
        first = exact.quantile(0.5)
        exact.update_batch(rng.uniform(10, 11, 1_000))
        assert exact.quantile(0.5) != first
        assert exact.count == 1_100

    def test_merge(self, rng):
        a, b = ExactQuantiles(), ExactQuantiles()
        a.update_batch(rng.uniform(0, 1, 500))
        b.update_batch(rng.uniform(1, 2, 500))
        a.merge(b)
        assert a.count == 1_000
        assert b.count == 500
        with pytest.raises(IncompatibleSketchError):
            a.merge(TDigest())

    def test_values_returns_sorted_copy(self):
        exact = ExactQuantiles()
        exact.update_batch([3.0, 1.0, 2.0])
        values = exact.values()
        assert values.tolist() == [1.0, 2.0, 3.0]
        values[0] = 99.0
        assert exact.quantile(0.01) == 1.0

    def test_memory_grows_linearly(self, rng):
        exact = ExactQuantiles()
        exact.update_batch(rng.uniform(0, 1, 1_000))
        small = exact.size_bytes()
        exact.update_batch(rng.uniform(0, 1, 9_000))
        assert exact.size_bytes() == pytest.approx(small * 10, rel=0.05)

    def test_rejects_invalid(self):
        exact = ExactQuantiles()
        with pytest.raises(InvalidValueError):
            exact.update(float("nan"))
        exact.update(1.0)
        with pytest.raises(InvalidQuantileError):
            exact.quantile(0.0)
