"""Regression tests: merging with an empty sketch preserves bookkeeping.

The sharded subsystem routinely merges shards that happen to be empty
(a hash partition can starve a shard; a window can close before every
shard saw data), so ``merge`` must treat an empty operand as a no-op
for ``min``/``max``/``count`` in either direction.  TDigest used to
crash outright on empty-into-empty (``_compress`` indexed into a
zero-length centroid array); this file pins the contract for every
registry sketch.
"""

import numpy as np
import pytest

from repro.core import paper_config
from repro.core.registry import SKETCH_CLASSES
from repro.errors import EmptySketchError

SEED = 1234


def build(name):
    """A paper-configured sketch; fixed seed so configs are mergeable."""
    return paper_config(name, seed=SEED)


@pytest.fixture
def data(rng):
    # Positive, bounded values acceptable to every sketch (HDR range,
    # DCS universe, Moments log transform).
    return np.clip(1.0 + rng.pareto(1.0, 2_000), None, 1e5)


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
def test_merge_empty_into_nonempty(name, data):
    sketch = build(name)
    sketch.update_batch(data)
    before = (sketch.count, sketch.min, sketch.max)
    sketch.merge(build(name))
    assert (sketch.count, sketch.min, sketch.max) == before
    # the merged sketch still answers queries
    assert np.isfinite(sketch.quantile(0.5))


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
def test_merge_nonempty_into_empty(name, data):
    source = build(name)
    source.update_batch(data)
    target = build(name)
    target.merge(source)
    assert target.count == source.count
    assert target.min == source.min
    assert target.max == source.max
    assert np.isfinite(target.quantile(0.5))


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
def test_merge_empty_into_empty(name):
    target = build(name)
    target.merge(build(name))
    assert target.count == 0
    assert target.is_empty
    with pytest.raises(EmptySketchError):
        target.quantile(0.5)


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
def test_empty_empty_merge_then_update(name):
    """The merged-empty sketch must still ingest correctly afterwards."""
    sketch = build(name)
    sketch.merge(build(name))
    sketch.update(5.0)
    sketch.update(2.0)
    assert sketch.count == 2
    assert sketch.min == 2.0
    assert sketch.max == 5.0
