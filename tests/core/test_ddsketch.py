"""Unit tests for DDSketch."""

import numpy as np
import pytest

from repro.core import DDSketch, KLLSketch
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidQuantileError,
    InvalidValueError,
)
from tests.conftest import true_quantiles


class TestBasics:
    def test_empty_sketch_raises(self):
        sketch = DDSketch()
        assert sketch.is_empty
        with pytest.raises(EmptySketchError):
            sketch.quantile(0.5)
        with pytest.raises(EmptySketchError):
            _ = sketch.min

    def test_single_value(self):
        sketch = DDSketch(alpha=0.01)
        sketch.update(42.0)
        assert sketch.count == 1
        assert sketch.quantile(0.5) == pytest.approx(42.0, rel=0.01)
        assert sketch.quantile(1.0) == pytest.approx(42.0, rel=0.01)

    def test_invalid_quantiles(self):
        sketch = DDSketch()
        sketch.update(1.0)
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(InvalidQuantileError):
                sketch.quantile(q)

    def test_rejects_non_finite(self):
        sketch = DDSketch()
        with pytest.raises(InvalidValueError):
            sketch.update(float("nan"))
        with pytest.raises(InvalidValueError):
            sketch.update_batch([1.0, float("inf")])

    def test_min_max_count_tracking(self, pareto_data):
        sketch = DDSketch()
        sketch.update_batch(pareto_data)
        assert sketch.count == pareto_data.size
        assert sketch.min == pareto_data.min()
        assert sketch.max == pareto_data.max()

    def test_default_parameters_match_paper(self):
        sketch = DDSketch()
        assert sketch.alpha == pytest.approx(0.01)
        assert sketch.gamma == pytest.approx(1.0202, abs=1e-4)

    def test_unknown_store_rejected(self):
        with pytest.raises(InvalidValueError):
            DDSketch(store="btree")


class TestAccuracyGuarantee:
    @pytest.mark.parametrize("alpha", [0.01, 0.05])
    def test_relative_error_bound_on_positive_data(self, alpha, rng):
        data = 10.0 ** rng.uniform(-3, 5, 20_000)
        sketch = DDSketch(alpha=alpha)
        sketch.update_batch(data)
        for q, true in true_quantiles(
            data, (0.01, 0.25, 0.5, 0.75, 0.95, 0.99)
        ).items():
            est = sketch.quantile(q)
            assert abs(est - true) / true <= alpha + 1e-9, q

    def test_guarantee_holds_on_pareto(self, pareto_data):
        sketch = DDSketch(alpha=0.01)
        sketch.update_batch(pareto_data)
        for q, true in true_quantiles(
            pareto_data, (0.05, 0.5, 0.98, 0.99)
        ).items():
            assert abs(sketch.quantile(q) - true) / true <= 0.01 + 1e-9

    def test_negative_and_mixed_data(self, rng):
        data = np.concatenate([
            -(10.0 ** rng.uniform(-2, 2, 5_000)),
            np.zeros(100),
            10.0 ** rng.uniform(-2, 2, 5_000),
        ])
        rng.shuffle(data)
        sketch = DDSketch(alpha=0.02)
        sketch.update_batch(data)
        for q, true in true_quantiles(data, (0.1, 0.25, 0.75, 0.9)).items():
            est = sketch.quantile(q)
            if true != 0:
                assert abs(est - true) / abs(true) <= 0.02 + 1e-9
            else:
                assert est == 0.0

    def test_zeros_only(self):
        sketch = DDSketch()
        sketch.update_batch(np.zeros(100))
        assert sketch.quantile(0.5) == 0.0
        assert sketch.count == 100

    def test_quantiles_monotone(self, pareto_data):
        sketch = DDSketch()
        sketch.update_batch(pareto_data)
        qs = np.linspace(0.01, 1.0, 50)
        estimates = sketch.quantiles(qs)
        assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))

    def test_estimates_clamped_to_observed_range(self, pareto_data):
        sketch = DDSketch()
        sketch.update_batch(pareto_data)
        assert sketch.quantile(1.0) <= sketch.max
        assert sketch.quantile(1e-9) >= sketch.min


class TestBatchConsistency:
    def test_batch_equals_scalar_updates(self, rng):
        data = rng.uniform(0.1, 100.0, 2_000)
        batched = DDSketch()
        batched.update_batch(data)
        scalar = DDSketch()
        for value in data:
            scalar.update(float(value))
        for q in (0.1, 0.5, 0.9, 0.99):
            assert batched.quantile(q) == scalar.quantile(q)

    def test_empty_batch_is_noop(self):
        sketch = DDSketch()
        sketch.update_batch(np.zeros(0))
        assert sketch.is_empty


class TestMerge:
    def test_merge_equals_single_sketch(self, rng):
        a_data = rng.uniform(1.0, 50.0, 5_000)
        b_data = rng.uniform(100.0, 500.0, 5_000)
        merged = DDSketch()
        merged.update_batch(a_data)
        other = DDSketch()
        other.update_batch(b_data)
        merged.merge(other)

        single = DDSketch()
        single.update_batch(np.concatenate([a_data, b_data]))
        assert merged.count == single.count
        for q in (0.05, 0.5, 0.95, 0.99):
            assert merged.quantile(q) == single.quantile(q)

    def test_merge_keeps_other_unchanged(self, rng):
        a, b = DDSketch(), DDSketch()
        a.update_batch(rng.uniform(1, 10, 100))
        b.update_batch(rng.uniform(1, 10, 100))
        before = b.quantile(0.5)
        a.merge(b)
        assert b.count == 100
        assert b.quantile(0.5) == before

    def test_merge_incompatible_gamma(self):
        a = DDSketch(alpha=0.01)
        b = DDSketch(alpha=0.02)
        a.update(1.0)
        b.update(1.0)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_wrong_type(self):
        a = DDSketch()
        b = KLLSketch()
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_with_empty(self, rng):
        a = DDSketch()
        a.update_batch(rng.uniform(1, 10, 100))
        before = a.quantile(0.5)
        a.merge(DDSketch())
        assert a.quantile(0.5) == before


class TestRankAndCdf:
    def test_rank_roughly_inverts_quantile(self, pareto_data):
        sketch = DDSketch(alpha=0.01)
        sketch.update_batch(pareto_data)
        n = pareto_data.size
        s = np.sort(pareto_data)
        for q in (0.25, 0.5, 0.9):
            value = float(s[int(q * n)])
            assert abs(sketch.rank(value) / n - q) < 0.02

    def test_rank_extremes(self, pareto_data):
        sketch = DDSketch()
        sketch.update_batch(pareto_data)
        assert sketch.rank(sketch.max) == sketch.count
        assert sketch.rank(sketch.min - 1) == 0
        assert sketch.cdf(sketch.max) == 1.0


class TestStores:
    def test_collapsing_store_respects_budget(self, rng):
        data = 10.0 ** rng.uniform(-6, 6, 50_000)
        sketch = DDSketch(alpha=0.01, store="collapsing", max_bins=128)
        sketch.update_batch(data)
        assert sketch._positive._counts.size <= 128
        assert sketch.is_collapsed

    def test_collapsing_store_keeps_upper_quantile_guarantee(self, rng):
        data = 10.0 ** rng.uniform(-6, 6, 50_000)
        bounded = DDSketch(alpha=0.01, store="collapsing", max_bins=512)
        bounded.update_batch(data)
        true = true_quantiles(data, (0.9, 0.99))
        for q, t in true.items():
            assert abs(bounded.quantile(q) - t) / t <= 0.01 + 1e-9

    def test_sparse_store_same_estimates_as_dense(self, pareto_data):
        dense = DDSketch(alpha=0.01, store="dense")
        sparse = DDSketch(alpha=0.01, store="sparse")
        dense.update_batch(pareto_data)
        sparse.update_batch(pareto_data)
        for q in (0.1, 0.5, 0.99):
            assert dense.quantile(q) == sparse.quantile(q)

    def test_num_buckets_bounded_by_range_not_size(self, rng):
        # Sec 4.3: bucket count depends on the data range, not length.
        small = DDSketch()
        large = DDSketch()
        small.update_batch(rng.uniform(1, 100, 1_000))
        large.update_batch(rng.uniform(1, 100, 100_000))
        assert large.num_buckets <= small.num_buckets * 2

    def test_size_bytes_scales_with_buckets(self, rng):
        narrow = DDSketch()
        narrow.update_batch(rng.uniform(10, 11, 10_000))
        wide = DDSketch()
        wide.update_batch(10.0 ** rng.uniform(-6, 6, 10_000))
        assert wide.size_bytes() > narrow.size_bytes()
