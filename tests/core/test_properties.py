"""Property-based tests (hypothesis) for the core sketch invariants.

These cover the guarantees the paper's analysis leans on: the DD/UDD
relative-error bound on arbitrary positive floats, quantile
monotonicity, merge-equals-concatenation, serialization round-trips,
and order insensitivity of the deterministic summaries.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    DDSketch,
    ExactQuantiles,
    KLLSketch,
    MomentsSketch,
    ReqSketch,
    TDigest,
    UDDSketch,
    dumps,
    loads,
)

positive_floats = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(positive_floats, min_size=1, max_size=300)
quantiles = st.floats(min_value=0.001, max_value=1.0)


def exact_quantile(values: list[float], q: float) -> float:
    s = sorted(values)
    return s[max(math.ceil(q * len(s)), 1) - 1]


class TestDDSketchProperties:
    @given(values=value_lists, q=quantiles)
    @settings(max_examples=150, deadline=None)
    def test_relative_error_guarantee(self, values, q):
        sketch = DDSketch(alpha=0.01)
        sketch.update_batch(values)
        true = exact_quantile(values, q)
        est = sketch.quantile(q)
        assert abs(est - true) / true <= 0.01 + 1e-9

    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_order_insensitive(self, values):
        forward = DDSketch()
        forward.update_batch(values)
        backward = DDSketch()
        backward.update_batch(list(reversed(values)))
        for q in (0.25, 0.5, 0.9):
            assert forward.quantile(q) == backward.quantile(q)

    @given(a=value_lists, b=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        merged = DDSketch()
        merged.update_batch(a)
        other = DDSketch()
        other.update_batch(b)
        merged.merge(other)
        single = DDSketch()
        single.update_batch(a + b)
        for q in (0.1, 0.5, 0.99):
            assert merged.quantile(q) == single.quantile(q)

    @given(values=value_lists, q1=quantiles, q2=quantiles)
    @settings(max_examples=100, deadline=None)
    def test_quantile_monotone(self, values, q1, q2):
        sketch = DDSketch()
        sketch.update_batch(values)
        lo, hi = sorted((q1, q2))
        assert sketch.quantile(lo) <= sketch.quantile(hi) + 1e-12


class TestUDDSketchProperties:
    @given(values=value_lists, q=quantiles)
    @settings(max_examples=80, deadline=None)
    def test_current_guarantee_always_holds(self, values, q):
        sketch = UDDSketch(final_alpha=0.05, num_collapses=6,
                           max_buckets=64)
        sketch.update_batch(values)
        true = exact_quantile(values, q)
        est = sketch.quantile(q)
        assert abs(est - true) / true <= sketch.current_guarantee + 1e-9

    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_bucket_budget_respected(self, values):
        sketch = UDDSketch(final_alpha=0.05, num_collapses=6,
                           max_buckets=32)
        sketch.update_batch(values)
        assert sketch.num_buckets <= 32

    @given(a=value_lists, b=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_merge_count(self, a, b):
        x = UDDSketch(max_buckets=64)
        y = UDDSketch(max_buckets=64)
        x.update_batch(a)
        y.update_batch(b)
        x.merge(y)
        assert x.count == len(a) + len(b)
        assert x.min == min(a + b)
        assert x.max == max(a + b)


class TestSamplingSketchProperties:
    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_kll_estimates_come_from_stream(self, values):
        sketch = KLLSketch(max_compactor_size=16, seed=0)
        sketch.update_batch(values)
        universe = set(values)
        for q in (0.2, 0.5, 0.9, 1.0):
            assert sketch.quantile(q) in universe

    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_req_estimates_come_from_stream(self, values):
        sketch = ReqSketch(num_sections=4, seed=0)
        sketch.update_batch(values)
        universe = set(values)
        for q in (0.2, 0.5, 0.9, 1.0):
            assert sketch.quantile(q) in universe

    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_req_hra_keeps_maximum(self, values):
        sketch = ReqSketch(num_sections=4, hra=True, seed=1)
        sketch.update_batch(values)
        assert sketch.quantile(1.0) == max(values)

    @given(values=st.lists(positive_floats, min_size=1, max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_kll_space_bound(self, values):
        sketch = KLLSketch(max_compactor_size=16, seed=2)
        sketch.update_batch(values)
        assert sketch.num_retained <= sketch._total_capacity() + 16


class TestMomentsProperties:
    @given(a=value_lists, b=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_exactly_additive(self, a, b):
        x, y = MomentsSketch(num_moments=6), MomentsSketch(num_moments=6)
        x.update_batch(a)
        y.update_batch(b)
        x.merge(y)
        single = MomentsSketch(num_moments=6)
        single.update_batch(a + b)
        assert np.allclose(
            x.power_sums, single.power_sums, rtol=1e-9, atol=1e-6
        )

    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_estimates_within_range(self, values):
        assume(len(values) >= 5)
        sketch = MomentsSketch(num_moments=6)
        sketch.update_batch(values)
        for q in (0.1, 0.5, 0.9):
            est = sketch.quantile(q)
            assert min(values) <= est <= max(values)


class TestSerializationProperties:
    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_every_sketch(self, values):
        for sketch in (
            DDSketch(),
            UDDSketch(max_buckets=64),
            KLLSketch(max_compactor_size=16, seed=0),
            ReqSketch(num_sections=4, seed=0),
            MomentsSketch(num_moments=6),
            TDigest(compression=20),
            ExactQuantiles(),
        ):
            sketch.update_batch(values)
            restored = loads(dumps(sketch))
            assert restored.count == sketch.count
            assert restored.quantile(0.5) == pytest.approx(
                sketch.quantile(0.5), rel=1e-9
            )


class TestExactProperties:
    @given(values=value_lists, q=quantiles)
    @settings(max_examples=100, deadline=None)
    def test_exact_matches_definition(self, values, q):
        exact = ExactQuantiles()
        exact.update_batch(values)
        assert exact.quantile(q) == exact_quantile(values, q)

    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_rank_quantile_galois(self, values):
        # Rank and quantile form the adjunction of Sec 2.1:
        # quantile(rank(x)/N) <= x for any stream value x.  A tiny
        # epsilon keeps float rounding of r/n * n from tipping the
        # ceiling over r.
        exact = ExactQuantiles()
        exact.update_batch(values)
        n = len(values)
        for x in values[:20]:
            r = exact.rank(x)
            assert r >= 1
            assert exact.quantile(r / n - 1e-12) <= x
