"""Registry-driven self-merge semantics: ``s.merge(s)`` doubles s.

Merging a sketch into itself used to iterate *other*'s internal state
(KLL compactors, DDSketch stores, ...) while mutating the very same
objects, corrupting the sketch; ``_merge_bookkeeping`` read the already
doubled count.  The contract is now: ``s.merge(s)`` behaves exactly as
merging an identical independent copy — the count doubles and quantile
answers stay consistent with the doubled stream.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.registry import SKETCH_CLASSES, paper_config
from repro.parallel import ShardedSketch

ALL_SKETCHES = sorted(SKETCH_CLASSES)

FILL_VALUES = np.linspace(1.0, 50.0, 128)

QS = (0.1, 0.5, 0.9, 1.0)


def _filled(name):
    sketch = paper_config(name, seed=11)
    sketch.update_batch(FILL_VALUES)
    return sketch


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_self_merge_equals_merging_an_identical_copy(name):
    sketch = _filled(name)
    reference = _filled(name)
    reference.merge(copy.deepcopy(reference))
    sketch.merge(sketch)
    assert sketch.count == reference.count == 2 * len(FILL_VALUES)
    assert sketch.min == reference.min
    assert sketch.max == reference.max
    for q, got, want in zip(
        QS, sketch.quantiles(QS), reference.quantiles(QS)
    ):
        # Identical construction path -> identical answers, even for
        # the randomized sketches (same seed, same operations).
        assert got == want, f"q={q}"


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_self_merge_keeps_quantiles_in_range(name):
    sketch = _filled(name)
    sketch.merge(sketch)
    for value in sketch.quantiles(QS):
        assert FILL_VALUES[0] <= value <= FILL_VALUES[-1]
    # Doubling the stream leaves every distributional statement intact:
    # the median of (S + S) is the median of S, within sketch error.
    assert abs(sketch.quantile(0.5) - 25.5) < 5.0


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_repeated_self_merge_stays_consistent(name):
    sketch = _filled(name)
    sketch.merge(sketch)
    sketch.merge(sketch)
    assert sketch.count == 4 * len(FILL_VALUES)
    assert sketch.rank(sketch.max) == sketch.count
    assert sketch.cdf(sketch.max) == 1.0


def test_sharded_self_merge_doubles_through_the_merged_view():
    sharded = ShardedSketch(
        lambda: paper_config("kll", seed=11), n_shards=4
    )
    sharded.update_batch(FILL_VALUES)
    before_q = sharded.quantile(0.5)
    sharded.merge(sharded)
    assert sharded.count == 2 * len(FILL_VALUES)
    assert sum(sharded.shard_counts()) == sharded.count
    assert abs(sharded.quantile(0.5) - before_q) < 5.0
    assert sharded.min == FILL_VALUES[0]
    assert sharded.max == FILL_VALUES[-1]
