"""Unit tests for the Count-Sketch substrate."""

import numpy as np
import pytest

from repro.core.countsketch import CountSketch
from repro.errors import IncompatibleSketchError, InvalidValueError


class TestConfiguration:
    def test_width_must_be_power_of_two(self):
        with pytest.raises(InvalidValueError):
            CountSketch(width=100)
        with pytest.raises(InvalidValueError):
            CountSketch(width=1)
        CountSketch(width=128)  # fine

    def test_depth_positive(self):
        with pytest.raises(InvalidValueError):
            CountSketch(depth=0)

    def test_negative_keys_rejected(self):
        with pytest.raises(InvalidValueError):
            CountSketch().update(-1)


class TestEstimation:
    def test_exact_for_single_key(self):
        sketch = CountSketch(width=256, seed=1)
        sketch.update(42, 100)
        assert sketch.estimate(42) == 100

    def test_unseen_key_near_zero(self):
        sketch = CountSketch(width=1024, seed=2)
        rng = np.random.default_rng(0)
        sketch.update_batch(rng.integers(0, 1000, 10_000))
        assert abs(sketch.estimate(999_999)) < 200

    def test_heavy_hitter_estimated_accurately(self):
        sketch = CountSketch(width=1024, depth=5, seed=3)
        rng = np.random.default_rng(1)
        sketch.update_batch(rng.integers(0, 10_000, 20_000))
        sketch.update(7, 5_000)
        estimate = sketch.estimate(7)
        assert abs(estimate - 5_000) < 500

    def test_negative_updates_cancel(self):
        sketch = CountSketch(width=256, seed=4)
        sketch.update(5, 10)
        sketch.update(5, -10)
        assert sketch.estimate(5) == 0

    def test_estimate_batch_matches_scalar(self):
        sketch = CountSketch(width=512, seed=5)
        rng = np.random.default_rng(2)
        sketch.update_batch(rng.integers(0, 100, 5_000))
        keys = np.arange(0, 100)
        batch = sketch.estimate_batch(keys)
        for key, est in zip(keys, batch):
            assert est == sketch.estimate(int(key))

    def test_empty_batches(self):
        sketch = CountSketch()
        sketch.update_batch(np.zeros(0, dtype=np.int64))
        assert sketch.estimate_batch(np.zeros(0, dtype=np.int64)).size == 0

    def test_unbiased_over_seeds(self):
        # The signed-median construction is (approximately) unbiased:
        # averaging estimates across independent sketches converges to
        # the true count.
        rng = np.random.default_rng(3)
        background = rng.integers(0, 5_000, 20_000)
        estimates = []
        for seed in range(10):
            sketch = CountSketch(width=256, depth=1, seed=seed)
            sketch.update_batch(background)
            sketch.update(77, 300)
            estimates.append(sketch.estimate(77))
        assert abs(np.mean(estimates) - 300) < 250


class TestMerge:
    def test_merge_adds_counts(self):
        a = CountSketch(width=256, seed=7)
        b = CountSketch(width=256, seed=7)
        a.update(3, 10)
        b.update(3, 5)
        a.merge(b)
        assert a.estimate(3) == 15

    def test_merge_requires_same_seed(self):
        a = CountSketch(seed=1)
        b = CountSketch(seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_requires_same_shape(self):
        a = CountSketch(width=256, seed=1)
        b = CountSketch(width=512, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)


class TestAccounting:
    def test_size_fixed(self):
        sketch = CountSketch(width=512, depth=5)
        before = sketch.size_bytes()
        sketch.update_batch(np.arange(10_000))
        assert sketch.size_bytes() == before
        assert before >= 8 * 512 * 5
