"""Unit tests for KLL± (deletion-capable KLL)."""

import numpy as np
import pytest

from repro.core import KLLPlusMinus, KLLSketch, dumps, loads
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidValueError,
)


class TestBasics:
    def test_without_deletions_equals_kll(self, rng):
        data = rng.uniform(0, 100, 20_000)
        pm = KLLPlusMinus(max_compactor_size=350, seed=5)
        kll = KLLSketch(max_compactor_size=350, seed=5)
        pm.update_batch(data)
        kll.update_batch(data)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert pm.quantile(q) == kll.quantile(q)

    def test_empty(self):
        with pytest.raises(EmptySketchError):
            KLLPlusMinus().quantile(0.5)
        with pytest.raises(EmptySketchError):
            KLLPlusMinus().rank(1.0)

    def test_net_count(self, rng):
        pm = KLLPlusMinus(seed=1)
        data = rng.uniform(0, 1, 1_000)
        pm.update_batch(data)
        pm.delete_batch(data[:400])
        assert pm.count == 600
        assert pm.num_deleted == 400

    def test_cannot_overdelete(self, rng):
        pm = KLLPlusMinus(seed=1)
        pm.update_batch(rng.uniform(0, 1, 100))
        with pytest.raises(InvalidValueError):
            pm.delete_batch(rng.uniform(0, 1, 101))


class TestDeletionAccuracy:
    def test_deleting_lower_half_shifts_quantiles(self, rng):
        low = rng.uniform(0, 10, 50_000)
        high = rng.uniform(100, 110, 50_000)
        pm = KLLPlusMinus(seed=2)
        pm.update_batch(low)
        pm.update_batch(high)
        assert pm.quantile(0.5) < 100
        pm.delete_batch(low)
        # Only high values remain: all quantiles from the high band.
        for q in (0.05, 0.5, 0.95):
            assert 99 <= pm.quantile(q) <= 110, q

    def test_rank_after_partial_deletion(self, rng):
        data = rng.uniform(0, 1, 60_000)
        pm = KLLPlusMinus(seed=3)
        pm.update_batch(data)
        below_half = data[data < 0.5]
        pm.delete_batch(below_half)
        remaining = np.sort(data[data >= 0.5])
        for q in (0.25, 0.5, 0.75):
            est = pm.quantile(q)
            rank = np.searchsorted(remaining, est, side="right")
            assert abs(rank / remaining.size - q) < 0.05, q

    def test_interleaved_insert_delete(self, rng):
        pm = KLLPlusMinus(seed=4)
        alive: list[np.ndarray] = []
        for round_no in range(5):
            batch = rng.uniform(round_no, round_no + 1, 20_000)
            pm.update_batch(batch)
            alive.append(batch)
            if round_no >= 2:
                victim = alive.pop(0)
                pm.delete_batch(victim)
        remaining = np.sort(np.concatenate(alive))
        assert pm.count == remaining.size
        est = pm.quantile(0.5)
        rank = np.searchsorted(remaining, est, side="right")
        assert abs(rank / remaining.size - 0.5) < 0.05


class TestMerge:
    def test_merge_combines_inserts_and_deletes(self, rng):
        a = KLLPlusMinus(seed=1)
        b = KLLPlusMinus(seed=2)
        data_a = rng.uniform(0, 1, 10_000)
        data_b = rng.uniform(5, 6, 10_000)
        a.update_batch(data_a)
        b.update_batch(data_b)
        b.delete_batch(data_b[:5_000])
        a.merge(b)
        assert a.count == 15_000
        assert a.num_deleted == 5_000

    def test_merge_wrong_type(self):
        with pytest.raises(IncompatibleSketchError):
            KLLPlusMinus().merge(KLLSketch())


class TestSerialization:
    def test_round_trip_with_deletions(self, rng):
        pm = KLLPlusMinus(seed=7)
        data = rng.uniform(0, 100, 20_000)
        pm.update_batch(data)
        pm.delete_batch(data[:5_000])
        restored = loads(dumps(pm))
        assert restored.count == pm.count
        assert restored.num_deleted == pm.num_deleted
        assert restored.quantile(0.5) == pm.quantile(0.5)


class TestSpace:
    def test_space_is_two_kll_sketches(self, rng):
        pm = KLLPlusMinus(max_compactor_size=200, seed=1)
        data = rng.uniform(0, 1, 100_000)
        pm.update_batch(data)
        pm.delete_batch(data[:50_000])
        kll = KLLSketch(max_compactor_size=200, seed=1)
        kll.update_batch(data)
        assert pm.size_bytes() <= 3 * kll.size_bytes()
