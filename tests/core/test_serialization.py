"""Unit tests for sketch serialization.

Registry-driven: every sketch registered in ``repro.core.registry``
must have a codec and round-trip *bit-identically*, so a newly added
sketch cannot silently escape the serving system's snapshot path.
"""

import numpy as np
import pytest

from repro.core import SKETCH_CLASSES, dumps, loads, make_sketch, paper_config
from repro.core import serialization
from repro.core.base import QuantileSketch
from repro.errors import SerializationError

ALL_NAMES = sorted(SKETCH_CLASSES)
QS = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)


def fill(name: str, rng: np.random.Generator) -> QuantileSketch:
    sketch = paper_config(name, seed=7)
    n = 2_000 if name == "gk" else 30_000
    sketch.update_batch(1.0 + rng.pareto(1.0, n))
    return sketch


class TestRegistryCoverage:
    """The codec table must track the sketch registry exactly."""

    def test_every_registered_sketch_has_a_codec(self):
        missing = sorted(set(SKETCH_CLASSES) - set(serialization._CODECS))
        assert not missing, (
            f"sketches registered in repro.core.registry but lacking a "
            f"serialization codec: {missing} — add an encoder/decoder "
            f"pair to repro.core.serialization._CODECS"
        )

    def test_codec_classes_match_registry_classes(self):
        mismatched = sorted(
            name
            for name in SKETCH_CLASSES
            if name in serialization._CODECS
            and serialization._CODECS[name][0] is not SKETCH_CLASSES[name]
        )
        assert not mismatched, (
            f"codec bound to a different class than the registry for: "
            f"{mismatched}"
        )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_round_trip_is_bit_identical(self, name, rng):
        """decode(encode(s)) must re-encode to the same bytes.

        Bit-identity is what makes store snapshots deterministic: the
        service layer re-snapshots restored stores and expects the
        exact payload back.
        """
        sketch = fill(name, rng)
        payload = dumps(sketch)
        again = dumps(loads(payload))
        assert again == payload, (
            f"sketch {name!r} does not round-trip bit-identically "
            f"through its codec ({len(payload)} bytes in, "
            f"{len(again)} bytes out)"
        )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_empty_round_trip_is_bit_identical(self, name):
        payload = dumps(make_sketch(name))
        assert dumps(loads(payload)) == payload, (
            f"empty {name!r} does not round-trip bit-identically"
        )


@pytest.mark.parametrize("name", ALL_NAMES)
class TestRoundTrip:
    def test_quantiles_survive(self, name, rng):
        sketch = fill(name, rng)
        restored = loads(dumps(sketch))
        assert type(restored) is type(sketch)
        assert restored.count == sketch.count
        for q in QS:
            assert restored.quantile(q) == pytest.approx(
                sketch.quantile(q), rel=1e-9
            ), q

    def test_bookkeeping_survives(self, name, rng):
        sketch = fill(name, rng)
        restored = loads(dumps(sketch))
        assert restored.min == sketch.min
        assert restored.max == sketch.max
        assert restored.size_bytes() == sketch.size_bytes()

    def test_restored_sketch_accepts_updates(self, name, rng):
        sketch = fill(name, rng)
        restored = loads(dumps(sketch))
        restored.update_batch(1.0 + rng.pareto(1.0, 1_000))
        assert restored.count == sketch.count + 1_000

    def test_restored_sketch_merges(self, name, rng):
        sketch = fill(name, rng)
        restored = loads(dumps(sketch))
        other = fill(name, np.random.default_rng(99))
        restored.merge(other)
        assert restored.count == sketch.count + other.count

    def test_empty_sketch_round_trips(self, name, rng):
        sketch = make_sketch(name)
        restored = loads(dumps(sketch))
        assert restored.is_empty


@pytest.mark.parametrize("name", ALL_NAMES)
class TestRestoreEquivalence:
    """Restore-then-continue must equal never-interrupted.

    This is the property crash recovery stands on (DESIGN.md §11): a
    sketch checkpointed mid-stream and fed the remaining suffix after
    restore must be *bit-identical* to one that never left memory.
    Format v2 exists for this — randomized sketches carry their RNG
    state, buffered sketches their unflushed buffers.
    """

    def _stream(self, name, rng):
        head = 1_000 if name == "gk" else 20_000
        tail = 500 if name == "gk" else 5_000
        return 1.0 + rng.pareto(1.0, head + tail), head

    def test_restored_continuation_is_bit_identical(self, name, rng):
        data, head = self._stream(name, rng)
        # The control sees the same batch boundaries as the
        # interrupted run: recovery replays the journaled batches
        # as-journaled, and float accumulation (e.g. Moments power
        # sums) is not associative across different batchings.
        continuous = paper_config(name, seed=7)
        continuous.update_batch(data[:head])
        continuous.update_batch(data[head:])

        interrupted = paper_config(name, seed=7)
        interrupted.update_batch(data[:head])
        restored = loads(dumps(interrupted))
        restored.update_batch(data[head:])

        assert dumps(restored) == dumps(continuous), (
            f"{name!r}: snapshot/restore mid-stream diverges from the "
            f"continuous run — serialized state is incomplete (RNG "
            f"state or pending buffers?)"
        )

    def test_encoding_midstream_does_not_perturb(self, name, rng):
        """dumps() must be a pure read: no flush, no RNG draw."""
        data, head = self._stream(name, rng)
        observed = paper_config(name, seed=7)
        control = paper_config(name, seed=7)
        observed.update_batch(data[:head])
        control.update_batch(data[:head])
        dumps(observed)  # a checkpoint passing by
        observed.update_batch(data[head:])
        control.update_batch(data[head:])
        assert dumps(observed) == dumps(control), (
            f"{name!r}: encoding the sketch changed its future — the "
            f"codec must not mutate (e.g. flush buffers) at encode "
            f"time"
        )


class TestFormat:
    def test_magic_checked(self):
        with pytest.raises(SerializationError):
            loads(b"XXXX" + b"\x01\x03kll")

    def test_truncation_detected(self, rng):
        payload = dumps(fill("ddsketch", rng))
        with pytest.raises(SerializationError):
            loads(payload[: len(payload) // 2])

    def test_trailing_garbage_detected(self, rng):
        payload = dumps(fill("kll", rng))
        with pytest.raises(SerializationError):
            loads(payload + b"\x00")

    def test_unknown_version(self, rng):
        payload = bytearray(dumps(fill("moments", rng)))
        payload[4] = 99
        with pytest.raises(SerializationError):
            loads(bytes(payload))

    def test_payload_is_compact(self, rng):
        # A sketch's byte-stream should be near its size_bytes figure,
        # not the raw stream size.
        sketch = fill("ddsketch", rng)
        payload = dumps(sketch)
        assert len(payload) < 16 * 8 * sketch.count / 100
