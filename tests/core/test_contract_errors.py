"""Registry-driven error-path conformance.

Every sketch the registry knows must honour the abstract contract in
``base.py`` uniformly: an empty sketch refuses every query with
:class:`EmptySketchError`, and a quantile outside (0, 1] raises
:class:`InvalidQuantileError` regardless of state.  Driving the test
from ``SKETCH_CLASSES`` means a newly registered sketch is covered
automatically (and the SK003 lint rule guarantees registration).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import SKETCH_CLASSES, paper_config
from repro.errors import EmptySketchError, InvalidQuantileError
from repro.parallel import ShardedSketch

ALL_SKETCHES = sorted(SKETCH_CLASSES)

#: Values valid for every sketch, DCS's bounded universe included.
FILL_VALUES = np.linspace(1.0, 50.0, 64)

INVALID_QUANTILES = (0.0, -0.25, -1.0, 1.0 + 1e-9, 2.0, float("nan"))


def _empty(name):
    return paper_config(name, seed=11)


def _filled(name):
    sketch = paper_config(name, seed=11)
    sketch.update_batch(FILL_VALUES)
    return sketch


@pytest.mark.parametrize("name", ALL_SKETCHES)
class TestEmptySketchRaises:
    def test_quantile(self, name):
        with pytest.raises(EmptySketchError):
            _empty(name).quantile(0.5)

    def test_quantiles(self, name):
        with pytest.raises(EmptySketchError):
            _empty(name).quantiles([0.25, 0.5])

    def test_rank(self, name):
        with pytest.raises(EmptySketchError):
            _empty(name).rank(1.0)

    def test_cdf(self, name):
        with pytest.raises(EmptySketchError):
            _empty(name).cdf(1.0)

    def test_min_max(self, name):
        sketch = _empty(name)
        with pytest.raises(EmptySketchError):
            sketch.min
        with pytest.raises(EmptySketchError):
            sketch.max


@pytest.mark.parametrize("name", ALL_SKETCHES)
@pytest.mark.parametrize("q", INVALID_QUANTILES)
def test_invalid_quantile_raises(name, q):
    with pytest.raises(InvalidQuantileError):
        _filled(name).quantile(q)


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_invalid_member_of_batch_query_raises(name):
    with pytest.raises(InvalidQuantileError):
        _filled(name).quantiles([0.5, -0.5])


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_boundary_quantiles_are_valid(name):
    sketch = _filled(name)
    # q = 1.0 is inside the contract's half-open domain; a tiny
    # positive q is too.  Both must answer, not raise.
    assert np.isfinite(sketch.quantile(1.0))
    assert np.isfinite(sketch.quantile(1e-9))


def test_sharded_sketch_honours_the_same_contract():
    sharded = ShardedSketch(
        lambda: paper_config("kll", seed=11), n_shards=4
    )
    with pytest.raises(EmptySketchError):
        sharded.quantile(0.5)
    with pytest.raises(EmptySketchError):
        sharded.rank(1.0)
    sharded.update_batch(FILL_VALUES)
    with pytest.raises(InvalidQuantileError):
        sharded.quantile(0.0)
    with pytest.raises(InvalidQuantileError):
        sharded.quantile(1.5)
