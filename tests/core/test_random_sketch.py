"""Unit tests for the Random (Manku et al.) sketch."""

import numpy as np
import pytest

from repro.core import KLLSketch, RandomSketch
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidValueError,
)


class TestBasics:
    def test_empty(self):
        with pytest.raises(EmptySketchError):
            RandomSketch().quantile(0.5)

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            RandomSketch(num_buffers=1)
        with pytest.raises(InvalidValueError):
            RandomSketch(buffer_size=1)
        with pytest.raises(InvalidValueError):
            RandomSketch().update(float("nan"))

    def test_small_stream_exact(self):
        sketch = RandomSketch(num_buffers=4, buffer_size=64, seed=0)
        for value in range(1, 51):
            sketch.update(float(value))
        assert sketch.quantile(0.5) == 25.0
        assert sketch.quantile(1.0) == 50.0

    def test_estimates_are_stream_values(self, rng):
        data = np.round(rng.uniform(0, 100, 20_000), 6)
        sketch = RandomSketch(seed=1)
        sketch.update_batch(data)
        universe = set(data.tolist())
        for q in (0.1, 0.5, 0.9):
            assert sketch.quantile(q) in universe


class TestCollapse:
    def test_space_bounded_by_buffers(self, rng):
        sketch = RandomSketch(num_buffers=8, buffer_size=128, seed=2)
        sketch.update_batch(rng.uniform(0, 1, 100_000))
        assert sketch.num_retained <= 8 * 128
        assert sketch.count == 100_000

    def test_weight_conserved_by_collapse(self, rng):
        sketch = RandomSketch(num_buffers=4, buffer_size=64, seed=3)
        n = 50_000
        sketch.update_batch(rng.uniform(0, 1, n))
        _values, weights = sketch._weighted_samples()
        # Collapses conserve total weight up to integer division slack.
        assert abs(int(weights.sum()) - n) / n < 0.05

    def test_rank_error_reasonable(self, rng):
        sketch = RandomSketch(num_buffers=8, buffer_size=128, seed=4)
        data = rng.uniform(0, 1, 100_000)
        sketch.update_batch(data)
        s = np.sort(data)
        for q in (0.25, 0.5, 0.75, 0.95):
            est = sketch.quantile(q)
            rank = np.searchsorted(s, est, side="right") / s.size
            assert abs(rank - q) < 0.05, q


class TestKLLImprovesRandom:
    def test_kll_more_accurate_at_equal_space(self, rng):
        # Sec 5.2.1: KLL improves Random's space/accuracy trade-off.
        # Compare mean rank error at (approximately) equal retained
        # sample sizes, averaged over seeds.
        data = rng.uniform(0, 1, 150_000)
        s = np.sort(data)
        qs = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)

        def mean_rank_error(sketch):
            errors = []
            for q in qs:
                est = sketch.quantile(q)
                rank = np.searchsorted(s, est, side="right") / s.size
                errors.append(abs(rank - q))
            return float(np.mean(errors))

        random_errors = []
        kll_errors = []
        for seed in range(5):
            random_sketch = RandomSketch(
                num_buffers=8, buffer_size=128, seed=seed
            )
            random_sketch.update_batch(data)
            random_errors.append(mean_rank_error(random_sketch))
            kll = KLLSketch(max_compactor_size=350, seed=seed)
            kll.update_batch(data)
            kll_errors.append(mean_rank_error(kll))
        assert np.mean(kll_errors) <= np.mean(random_errors) * 1.5


class TestMerge:
    def test_merge_counts_and_range(self, rng):
        a = RandomSketch(seed=1)
        b = RandomSketch(seed=2)
        a.update_batch(rng.uniform(0, 1, 20_000))
        b.update_batch(rng.uniform(9, 10, 20_000))
        a.merge(b)
        assert a.count == 40_000
        assert a.quantile(0.25) < 1.0
        assert a.quantile(0.75) > 9.0
        assert a.num_retained <= a.num_buffers * a.buffer_size

    def test_merge_requires_same_config(self):
        a = RandomSketch(buffer_size=64)
        b = RandomSketch(buffer_size=128)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)
        with pytest.raises(IncompatibleSketchError):
            a.merge(KLLSketch())
