"""Registry-driven NaN rejection (the value-domain policy of base.py).

NaN fails every ordered comparison, so a NaN that slipped into
``_observe`` would advance ``_count`` while leaving ``_min``/``_max``
untouched — rank/cdf bounds and serialization round-trips then disagree
about the stream.  The policy is: NaN raises
:class:`~repro.errors.InvalidValueError` from every ingestion path, and
a rejected update/batch leaves the sketch exactly as it was.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.base import QuantileSketch
from repro.core.registry import SKETCH_CLASSES, paper_config
from repro.errors import InvalidValueError
from repro.parallel import ShardedSketch

ALL_SKETCHES = sorted(SKETCH_CLASSES)

#: Valid for every sketch, DCS's bounded universe and HDR's positive
#: trackable range included.
FILL_VALUES = np.linspace(1.0, 50.0, 64)


def _filled(name):
    sketch = paper_config(name, seed=11)
    sketch.update_batch(FILL_VALUES)
    return sketch


def _state(sketch):
    return (sketch.count, sketch.min, sketch.max, sketch.quantile(0.5))


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_update_nan_raises_and_leaves_state_unchanged(name):
    sketch = _filled(name)
    before = _state(sketch)
    with pytest.raises(InvalidValueError):
        sketch.update(math.nan)
    assert _state(sketch) == before


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_batch_with_nan_raises_and_count_is_unchanged(name):
    sketch = _filled(name)
    before_count = sketch.count
    poisoned = np.array([7.0, math.nan, 9.0])
    with pytest.raises(InvalidValueError):
        sketch.update_batch(poisoned)
    assert sketch.count == before_count


@pytest.mark.parametrize("name", ALL_SKETCHES)
def test_update_nan_on_empty_sketch_stays_empty(name):
    sketch = paper_config(name, seed=11)
    with pytest.raises(InvalidValueError):
        sketch.update(math.nan)
    assert sketch.is_empty


def test_observe_helpers_reject_nan_before_mutating():
    # The bookkeeping backstop itself, independent of any concrete
    # sketch's own validation.
    class Minimal(QuantileSketch):
        name = "minimal"

        def update(self, value):
            self._observe(value)

        def merge(self, other):
            self._merge_bookkeeping(other)

        def quantile(self, q):
            self._require_nonempty()
            return self._min

        def size_bytes(self):
            return 0

    sketch = Minimal()
    with pytest.raises(InvalidValueError):
        sketch.update(math.nan)
    assert sketch.count == 0
    with pytest.raises(InvalidValueError):
        sketch._observe_batch(np.array([1.0, math.nan]))
    assert sketch.count == 0
    # ±inf orders correctly and is representable by the bookkeeping.
    sketch._observe(math.inf)
    assert sketch.count == 1 and sketch.max == math.inf


def test_sharded_sketch_rejects_nan_batches_atomically():
    sharded = ShardedSketch(
        lambda: paper_config("kll", seed=11), n_shards=4
    )
    sharded.update_batch(FILL_VALUES)
    before = (sharded.count, sharded.shard_counts())
    with pytest.raises(InvalidValueError):
        sharded.update_batch(np.array([1.0, math.nan, 2.0]))
    with pytest.raises(InvalidValueError):
        sharded.update_shard(0, np.array([math.nan]))
    with pytest.raises(InvalidValueError):
        sharded.update(math.nan)
    assert (sharded.count, sharded.shard_counts()) == before
