"""Unit tests for the t-digest baseline."""

import numpy as np
import pytest

from repro.core import GKSketch, TDigest
from repro.errors import IncompatibleSketchError, InvalidValueError
from tests.conftest import true_quantiles


class TestTDigest:
    def test_rejects_tiny_compression(self):
        with pytest.raises(InvalidValueError):
            TDigest(compression=1)

    def test_centroid_count_bounded(self, rng):
        sketch = TDigest(compression=100)
        sketch.update_batch(rng.normal(0, 1, 200_000))
        # The k1 scale function bounds centroids near the compression.
        assert sketch.num_centroids <= 2 * 100

    def test_tail_quantiles_sharper_than_mid(self, rng):
        data = rng.normal(0, 1, 200_000)
        sketch = TDigest(compression=100)
        sketch.update_batch(data)
        s = np.sort(data)
        def rank_err(q):
            est = sketch.quantile(q)
            return abs(np.searchsorted(s, est) / s.size - q)
        # Rank error at the extreme tail is tighter than at the median.
        assert rank_err(0.999) <= rank_err(0.5) + 1e-3

    def test_extremes_are_exact(self, rng):
        data = rng.uniform(0, 100, 50_000)
        sketch = TDigest()
        sketch.update_batch(data)
        assert sketch.quantile(1.0) == data.max()
        assert sketch.quantile(1e-9) == data.min()

    def test_reasonable_uniform_accuracy(self, uniform_data):
        sketch = TDigest(compression=100)
        sketch.update_batch(uniform_data)
        for q, true in true_quantiles(
            uniform_data, (0.25, 0.5, 0.9, 0.99)
        ).items():
            assert abs(sketch.quantile(q) - true) / true < 0.02

    def test_merge_preserves_count_and_accuracy(self, rng):
        parts = [rng.normal(0, 1, 20_000) for _ in range(4)]
        merged = TDigest()
        for part in parts:
            piece = TDigest()
            piece.update_batch(part)
            merged.merge(piece)
        assert merged.count == 80_000
        s = np.sort(np.concatenate(parts))
        est = merged.quantile(0.5)
        assert abs(np.searchsorted(s, est) / s.size - 0.5) < 0.02

    def test_merge_wrong_type(self):
        with pytest.raises(IncompatibleSketchError):
            TDigest().merge(GKSketch())

    def test_quantiles_monotone(self, pareto_data):
        sketch = TDigest()
        sketch.update_batch(pareto_data)
        estimates = sketch.quantiles(np.linspace(0.01, 1.0, 30))
        assert all(
            a <= b + 1e-9 for a, b in zip(estimates, estimates[1:])
        )

    def test_rank_bounded(self, rng):
        sketch = TDigest()
        data = rng.uniform(0, 10, 10_000)
        sketch.update_batch(data)
        assert sketch.rank(-1.0) == 0
        assert sketch.rank(11.0) == 10_000
        assert 0 <= sketch.rank(5.0) <= 10_000


class TestGKSketch:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(InvalidValueError):
            GKSketch(epsilon=0.6)

    def test_rank_error_guarantee(self, rng):
        data = rng.uniform(0, 1, 20_000)
        sketch = GKSketch(epsilon=0.01)
        sketch.update_batch(data)
        s = np.sort(data)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            est = sketch.quantile(q)
            rank = np.searchsorted(s, est, side="right") / s.size
            assert abs(rank - q) <= 0.02, q  # 2 * epsilon headroom

    def test_space_sublinear(self, rng):
        sketch = GKSketch(epsilon=0.01)
        sketch.update_batch(rng.uniform(0, 1, 20_000))
        assert sketch.num_tuples < 2_000

    def test_estimates_are_stream_values(self, rng):
        data = np.round(rng.uniform(0, 100, 5_000), 6)
        universe = set(data.tolist())
        sketch = GKSketch(epsilon=0.02)
        sketch.update_batch(data)
        assert sketch.quantile(0.5) in universe

    def test_merge_sums_counts(self, rng):
        a, b = GKSketch(0.02), GKSketch(0.02)
        a.update_batch(rng.uniform(0, 1, 3_000))
        b.update_batch(rng.uniform(0, 1, 3_000))
        a.merge(b)
        assert a.count == 6_000
        est = a.quantile(0.5)
        assert 0.4 < est < 0.6

    def test_merge_wrong_type(self):
        with pytest.raises(IncompatibleSketchError):
            GKSketch().merge(TDigest())
