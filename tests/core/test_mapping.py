"""Unit tests for the logarithmic index mapping."""

import math

import numpy as np
import pytest

from repro.core.mapping import (
    LogarithmicMapping,
    alpha_after_collapses,
    initial_alpha,
)
from repro.errors import IncompatibleSketchError, InvalidValueError


class TestLogarithmicMapping:
    def test_gamma_matches_paper(self):
        # Sec 4.2: alpha = 0.01 gives gamma = 1.0202.
        mapping = LogarithmicMapping(0.01)
        assert mapping.gamma == pytest.approx(1.0202, abs=1e-4)

    def test_index_of_one_is_zero(self):
        mapping = LogarithmicMapping(0.01)
        assert mapping.index(1.0) == 0

    def test_bucket_boundaries_are_respected(self):
        mapping = LogarithmicMapping(0.05)
        for index in (-5, -1, 0, 1, 7, 100):
            lower = mapping.lower_bound(index)
            upper = mapping.upper_bound(index)
            inside = math.sqrt(lower * upper)
            assert mapping.index(inside) == index
            # Upper bound is inclusive.
            assert mapping.index(upper * (1 - 1e-12)) <= index

    def test_relative_error_guarantee(self):
        mapping = LogarithmicMapping(0.01)
        rng = np.random.default_rng(0)
        values = 10.0 ** rng.uniform(-6, 6, 2_000)
        for value in values:
            rep = mapping.value(mapping.index(float(value)))
            assert abs(rep - value) / value <= 0.01 + 1e-12

    def test_index_batch_matches_scalar(self):
        mapping = LogarithmicMapping(0.02)
        rng = np.random.default_rng(1)
        values = 10.0 ** rng.uniform(-3, 3, 500)
        batch = mapping.index_batch(values)
        scalars = [mapping.index(float(v)) for v in values]
        assert batch.tolist() == scalars

    def test_rejects_nonpositive_values(self):
        mapping = LogarithmicMapping(0.01)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidValueError):
                mapping.index(bad)

    def test_rejects_out_of_range_magnitudes(self):
        mapping = LogarithmicMapping(0.01)
        with pytest.raises(InvalidValueError):
            mapping.index(1e-300)
        with pytest.raises(InvalidValueError):
            mapping.index(1e300)

    def test_rejects_bad_alpha(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(InvalidValueError):
                LogarithmicMapping(bad)

    def test_collapsed_squares_gamma(self):
        mapping = LogarithmicMapping(0.01)
        collapsed = mapping.collapsed()
        assert collapsed.gamma == pytest.approx(mapping.gamma ** 2)
        # Sec 3.4: alpha' = 2a / (1 + a^2).
        assert collapsed.alpha == pytest.approx(
            2 * 0.01 / (1 + 0.01 ** 2)
        )

    def test_collapsed_bucket_mapping_consistency(self):
        # Old buckets (2j-1, 2j) must land inside new bucket j.
        mapping = LogarithmicMapping(0.03)
        collapsed = mapping.collapsed()
        for old_index in range(-10, 11):
            value = mapping.value(old_index)
            new_index = (old_index + 1) // 2
            assert collapsed.index(value) == new_index

    def test_compatibility(self):
        a = LogarithmicMapping(0.01)
        b = LogarithmicMapping(0.01)
        c = LogarithmicMapping(0.02)
        assert a.is_compatible_with(b)
        assert not a.is_compatible_with(c)
        with pytest.raises(IncompatibleSketchError):
            a.require_compatible(c)


class TestCollapseAlgebra:
    def test_initial_alpha_round_trips(self):
        for k in (0, 1, 5, 12):
            alpha0 = initial_alpha(0.01, k)
            assert alpha_after_collapses(alpha0, k) == pytest.approx(0.01)

    def test_initial_alpha_is_tighter(self):
        assert initial_alpha(0.01, 12) < 0.01

    def test_zero_collapses_is_identity(self):
        assert initial_alpha(0.05, 0) == pytest.approx(0.05)
        assert alpha_after_collapses(0.05, 0) == pytest.approx(0.05)

    def test_paper_threshold_reached_after_budget(self):
        # Sec 4.2: with num_collapses = 12 the guarantee reaches 0.01
        # only at the 12th collapse, staying tighter before it.
        alpha0 = initial_alpha(0.01, 12)
        for k in range(12):
            assert alpha_after_collapses(alpha0, k) < 0.01
        assert alpha_after_collapses(alpha0, 12) == pytest.approx(0.01)

    def test_invalid_arguments(self):
        with pytest.raises(InvalidValueError):
            initial_alpha(0.01, -1)
        with pytest.raises(InvalidValueError):
            initial_alpha(1.5, 3)
        with pytest.raises(InvalidValueError):
            alpha_after_collapses(0.01, -2)
