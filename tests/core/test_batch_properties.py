"""Hypothesis property tests for the batch-ingestion contract.

`tests/core/test_batch_equivalence.py` pins batch == scalar on fixed
seeded streams; these tests quantify over the contract itself:

* an empty batch is the identity — serialized bytes unchanged;
* a batch containing NaN is rejected **atomically** — the error is
  raised before any state mutates, so the bytes are unchanged no
  matter where in the batch the NaN sits;
* the ±inf policy of the batch path matches the scalar path (both
  raise :class:`~repro.errors.InvalidValueError`), and the rejection
  is likewise atomic;
* batch ingestion is concatenation-compatible:
  ``update_batch(a); update_batch(b)`` leaves the sketch in the same
  state as ``update_batch(a ++ b)``.

All properties are registry-driven and byte-level except for Moments,
whose power sums accumulate in a data-dependent addition order
(answer-level there, as in the equivalence battery).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import SKETCH_CLASSES, paper_config
from repro.core.serialization import dumps
from repro.errors import InvalidValueError

SEED = 20230807

#: Compared by answers instead of bytes (float addition order differs
#: between ingestion schedules); see the equivalence battery.
ANSWER_LEVEL = frozenset({"moments"})

ALL_SKETCHES = sorted(SKETCH_CLASSES)

NAN = float("nan")
INF = float("inf")


def domain(name: str) -> st.SearchStrategy[float]:
    """Values in the domain sketch *name* accepts."""
    if name == "dcs":
        # DCS needs prior knowledge of the universe [0, 2^20).
        return st.integers(min_value=0, max_value=(1 << 20) - 1).map(float)
    if name == "hdr":
        # Non-negative, below the default highest trackable value.
        return st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        )
    return st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )


def batches(name: str, max_size: int = 120) -> st.SearchStrategy[list[float]]:
    return st.lists(domain(name), max_size=max_size)


def poison(batch: list[float], bad: float, index: int) -> list[float]:
    """*batch* with *bad* spliced in at a position derived from *index*."""
    cut = index % (len(batch) + 1)
    return batch[:cut] + [bad] + batch[cut:]


@pytest.mark.parametrize("name", ALL_SKETCHES)
class TestBatchProperties:
    @given(prefix=st.data())
    @settings(max_examples=20, deadline=None)
    def test_empty_batch_is_identity(self, name, prefix):
        sketch = paper_config(name, seed=SEED)
        sketch.update_batch(prefix.draw(batches(name)))
        before = dumps(sketch)
        count = sketch.count
        sketch.update_batch([])
        sketch.update_batch(np.zeros(0))
        sketch.update_batch(())
        assert sketch.count == count
        assert dumps(sketch) == before

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_nan_batch_rejected_atomically(self, name, data):
        sketch = paper_config(name, seed=SEED)
        sketch.update_batch(data.draw(batches(name)))
        before = dumps(sketch)
        count = sketch.count
        bad = poison(
            data.draw(batches(name)),
            NAN,
            data.draw(st.integers(min_value=0, max_value=1 << 16)),
        )
        with pytest.raises(InvalidValueError):
            sketch.update_batch(bad)
        assert sketch.count == count
        assert dumps(sketch) == before, (
            f"{name}: rejected batch left a partial prefix behind"
        )

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_inf_policy_matches_scalar(self, name, data):
        sign = data.draw(st.sampled_from((INF, -INF)))
        scalar = paper_config(name, seed=SEED)
        with pytest.raises(InvalidValueError):
            scalar.update(sign)
        batched = paper_config(name, seed=SEED)
        batched.update_batch(data.draw(batches(name)))
        before = dumps(batched)
        count = batched.count
        bad = poison(
            data.draw(batches(name)),
            sign,
            data.draw(st.integers(min_value=0, max_value=1 << 16)),
        )
        with pytest.raises(InvalidValueError):
            batched.update_batch(bad)
        assert batched.count == count
        assert dumps(batched) == before

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_batch_concat_compatible(self, name, data):
        a = data.draw(batches(name))
        b = data.draw(batches(name))
        split = paper_config(name, seed=SEED)
        split.update_batch(a)
        split.update_batch(b)
        joined = paper_config(name, seed=SEED)
        joined.update_batch(a + b)
        assert split.count == joined.count == len(a) + len(b)
        if name in ANSWER_LEVEL:
            # Moments: the power sums are mathematically equal but
            # accumulated in a different addition order, and the
            # max-entropy quantile solver amplifies ulp-level sum
            # differences.  Compare the sums themselves — state
            # equality modulo float associativity.
            np.testing.assert_allclose(
                split._power_sums, joined._power_sums, rtol=1e-9, atol=1e-9
            )
            if split.count:
                assert split.min == joined.min
                assert split.max == joined.max
        else:
            assert dumps(split) == dumps(joined), (
                f"{name}: update_batch(a);update_batch(b) != "
                f"update_batch(a ++ b)"
            )
