"""Unit tests for the maximum-entropy solver."""

import numpy as np
import pytest

from repro.core.maxent import (
    MaxEntropySolver,
    power_to_chebyshev_moments,
)


def chebyshev_moments_of(samples: np.ndarray, k: int) -> np.ndarray:
    """Empirical Chebyshev moments of samples scaled to [-1, 1]."""
    power = np.asarray([
        np.mean(samples ** i) for i in range(k + 1)
    ])
    return power_to_chebyshev_moments(power)


class TestMomentConversion:
    def test_low_order_identities(self):
        # T_0 = 1, T_1 = x, T_2 = 2x^2 - 1.
        power = np.asarray([1.0, 0.25, 0.5, 0.1])
        cheb = power_to_chebyshev_moments(power)
        assert cheb[0] == pytest.approx(1.0)
        assert cheb[1] == pytest.approx(0.25)
        assert cheb[2] == pytest.approx(2 * 0.5 - 1.0)
        # T_3 = 4x^3 - 3x.
        assert cheb[3] == pytest.approx(4 * 0.1 - 3 * 0.25)

    def test_matches_direct_evaluation(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(-1, 1, 50_000)
        cheb = chebyshev_moments_of(samples, 6)
        for j in range(7):
            direct = float(np.mean(np.cos(j * np.arccos(samples))))
            assert cheb[j] == pytest.approx(direct, abs=1e-9)


class TestSolver:
    def test_recovers_uniform(self):
        # Uniform on [-1, 1]: E[T_j] = 0 for odd j, known values even.
        rng = np.random.default_rng(1)
        samples = rng.uniform(-1, 1, 200_000)
        solution = MaxEntropySolver().solve(
            chebyshev_moments_of(samples, 8)
        )
        # The fitted density is flat to within sampling noise.
        assert solution.pdf.std() / solution.pdf.mean() < 0.05
        assert solution.quantile(0.5) == pytest.approx(0.0, abs=0.02)
        assert solution.quantile(0.25) == pytest.approx(-0.5, abs=0.03)

    def test_recovers_truncated_gaussian(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(0.0, 0.25, 300_000)
        samples = samples[np.abs(samples) < 1.0]
        solution = MaxEntropySolver().solve(
            chebyshev_moments_of(samples, 10)
        )
        s = np.sort(samples)
        for q in (0.1, 0.5, 0.9):
            true = float(s[int(q * s.size)])
            assert solution.quantile(q) == pytest.approx(true, abs=0.02)

    def test_cdf_properties(self):
        rng = np.random.default_rng(3)
        samples = rng.beta(2.0, 5.0, 100_000) * 2.0 - 1.0
        solution = MaxEntropySolver().solve(
            chebyshev_moments_of(samples, 8)
        )
        assert solution.cdf[0] == 0.0
        assert solution.cdf[-1] == 1.0
        assert (np.diff(solution.cdf) >= -1e-12).all()

    def test_quantile_inverts_cdf(self):
        rng = np.random.default_rng(4)
        samples = rng.uniform(-0.8, 0.8, 100_000)
        solution = MaxEntropySolver().solve(
            chebyshev_moments_of(samples, 6)
        )
        for q in (0.2, 0.5, 0.8):
            x = solution.quantile(q)
            assert solution.cdf_at(x) == pytest.approx(q, abs=1e-3)

    def test_converges_quickly_on_easy_input(self):
        rng = np.random.default_rng(5)
        samples = rng.uniform(-1, 1, 100_000)
        solution = MaxEntropySolver().solve(
            chebyshev_moments_of(samples, 6)
        )
        assert solution.iterations < 50
        assert solution.gradient_norm < 1e-6

    def test_grid_size_controls_resolution(self):
        rng = np.random.default_rng(6)
        samples = rng.normal(0, 0.3, 100_000)
        samples = samples[np.abs(samples) < 1.0]
        moments = chebyshev_moments_of(samples, 8)
        coarse = MaxEntropySolver(grid_size=128).solve(moments)
        fine = MaxEntropySolver(grid_size=2048).solve(moments)
        assert coarse.grid.size == 128
        assert fine.grid.size == 2048
        assert fine.quantile(0.5) == pytest.approx(
            coarse.quantile(0.5), abs=0.02
        )
