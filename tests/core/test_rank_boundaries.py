"""Registry-driven rank/cdf boundary pinning.

The default ``rank()`` inverts ``quantile()`` by bisection, which has
numeric edges the per-sketch implementations must not expose: querying
exactly at ``_min`` must acknowledge at least the minimum itself
(``rank(_min) >= 1``), querying at or above ``_max`` must saturate
(``rank(_max) == count`` and ``cdf(_max) == 1.0``), and rank must be
monotone across duplicate runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import SKETCH_CLASSES, paper_config
from repro.parallel import ShardedSketch

ALL_SKETCHES = sorted(SKETCH_CLASSES)

#: Positive integers (HDR- and DCS-safe) with duplicate runs and >= 5
#: distinct values (Moments needs a non-degenerate moment system).
DATA = np.array(
    [1.0, 2.0, 2.0, 2.0, 5.0, 9.0, 9.0, 12.0, 17.0, 17.0, 23.0],
)


def _filled(name):
    sketch = paper_config(name, seed=11)
    sketch.update_batch(DATA)
    return sketch


@pytest.mark.parametrize("name", ALL_SKETCHES)
class TestRankBoundaries:
    def test_rank_at_min_is_at_least_one(self, name):
        sketch = _filled(name)
        assert sketch.rank(sketch.min) >= 1

    def test_rank_below_min_is_zero(self, name):
        sketch = _filled(name)
        assert sketch.rank(sketch.min - 1.0) == 0
        assert sketch.cdf(sketch.min - 1.0) == 0.0

    def test_rank_at_and_above_max_saturates(self, name):
        sketch = _filled(name)
        assert sketch.rank(sketch.max) == sketch.count
        assert sketch.rank(sketch.max + 1.0) == sketch.count

    def test_cdf_at_max_is_exactly_one(self, name):
        sketch = _filled(name)
        assert sketch.cdf(sketch.max) == 1.0

    def test_rank_between_duplicates_is_monotone_and_bounded(self, name):
        sketch = _filled(name)
        probes = [1.0, 2.0, 3.0, 5.0, 9.0, 10.0, 17.0, 23.0]
        ranks = [sketch.rank(v) for v in probes]
        for earlier, later in zip(ranks, ranks[1:]):
            assert earlier <= later
        for rank in ranks:
            assert 0 <= rank <= sketch.count

    def test_cdf_is_monotone_and_in_unit_interval(self, name):
        sketch = _filled(name)
        probes = [0.5, 1.0, 2.0, 9.0, 17.0, 23.0, 30.0]
        cdfs = [sketch.cdf(v) for v in probes]
        for earlier, later in zip(cdfs, cdfs[1:]):
            assert earlier <= later
        for value in cdfs:
            assert 0.0 <= value <= 1.0

    def test_rank_and_cdf_saturate_at_infinities(self, name):
        # +/-inf are legal query arguments (the wire protocol carries
        # them via sentinels); every implementation must saturate
        # instead of e.g. flooring inf into an int.
        sketch = _filled(name)
        assert sketch.rank(float("inf")) == sketch.count
        assert sketch.rank(float("-inf")) == 0
        assert sketch.cdf(float("inf")) == 1.0
        assert sketch.cdf(float("-inf")) == 0.0

    def test_single_value_sketch_boundaries(self, name):
        sketch = paper_config(name, seed=11)
        sketch.update(7.0)
        assert sketch.rank(7.0) == 1
        assert sketch.cdf(7.0) == 1.0
        assert sketch.rank(6.0) == 0


def test_sharded_sketch_rank_boundaries():
    sharded = ShardedSketch(
        lambda: paper_config("kll", seed=11), n_shards=4
    )
    sharded.update_batch(DATA)
    assert sharded.rank(sharded.min) >= 1
    assert sharded.rank(sharded.max) == sharded.count
    assert sharded.cdf(sharded.max) == 1.0
