"""Unit tests for the sketch registry and paper factories."""

import pytest

from repro.core import (
    DDSketch,
    KLLSketch,
    MomentsSketch,
    ReqSketch,
    UDDSketch,
    make_sketch,
    paper_config,
)
from repro.core.registry import (
    BASELINE_SKETCHES,
    PAPER_SKETCHES,
    SKETCH_CLASSES,
)
from repro.errors import InvalidValueError


class TestRegistry:
    def test_paper_sketches_listed_in_order(self):
        assert PAPER_SKETCHES == (
            "kll", "moments", "ddsketch", "uddsketch", "req",
        )

    def test_every_name_instantiates(self):
        for name in SKETCH_CLASSES:
            sketch = make_sketch(name)
            assert sketch.is_empty

    def test_make_sketch_passes_parameters(self):
        sketch = make_sketch("ddsketch", alpha=0.05)
        assert isinstance(sketch, DDSketch)
        assert sketch.alpha == pytest.approx(0.05)

    def test_unknown_name(self):
        with pytest.raises(InvalidValueError):
            make_sketch("quantium")
        with pytest.raises(InvalidValueError):
            paper_config("quantium")

    def test_baselines_disjoint_from_paper_set(self):
        assert not set(PAPER_SKETCHES) & set(BASELINE_SKETCHES)


class TestPaperConfig:
    def test_kll_parameters(self):
        sketch = paper_config("kll")
        assert isinstance(sketch, KLLSketch)
        assert sketch.max_compactor_size == 350

    def test_req_parameters(self):
        sketch = paper_config("req")
        assert isinstance(sketch, ReqSketch)
        assert sketch.num_sections == 30
        assert sketch.hra is True

    def test_ddsketch_parameters(self):
        sketch = paper_config("ddsketch")
        assert isinstance(sketch, DDSketch)
        assert sketch.alpha == pytest.approx(0.01)
        assert sketch._store_kind == "dense"

    def test_uddsketch_parameters(self):
        sketch = paper_config("uddsketch")
        assert isinstance(sketch, UDDSketch)
        assert sketch.max_buckets == 1024
        assert sketch.collapse_budget == 12
        assert sketch.final_alpha == pytest.approx(0.01)

    def test_moments_transform_depends_on_dataset(self):
        # Sec 4.2: log transform for Pareto and Power only.
        assert paper_config("moments", dataset="pareto").transform == "log"
        assert paper_config("moments", dataset="power").transform == "log"
        assert paper_config("moments", dataset="nyt").transform == "none"
        assert paper_config("moments", dataset="uniform").transform == "none"
        assert paper_config("moments").transform == "none"
        sketch = paper_config("moments")
        assert isinstance(sketch, MomentsSketch)
        assert sketch.num_moments == 12

    def test_seed_makes_randomized_sketches_deterministic(self, rng):
        data = rng.uniform(0, 1, 20_000)
        a = paper_config("kll", seed=5)
        b = paper_config("kll", seed=5)
        a.update_batch(data)
        b.update_batch(data)
        assert a.quantile(0.9) == b.quantile(0.9)
