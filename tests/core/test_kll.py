"""Unit tests for the KLL sketch."""

import numpy as np
import pytest

from repro.core import DDSketch, KLLSketch
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidValueError,
)
from tests.conftest import true_quantiles


class TestBasics:
    def test_empty(self):
        sketch = KLLSketch()
        with pytest.raises(EmptySketchError):
            sketch.quantile(0.5)

    def test_small_stream_is_exact(self):
        # Below one compactor's capacity nothing is discarded.
        sketch = KLLSketch(max_compactor_size=350, seed=0)
        data = [3.0, 8.0, 11.0, 14.0, 16.0, 19.0, 25.0, 29.0, 30.0, 51.0]
        for value in data:
            sketch.update(value)
        # Table 1 of the paper: rank/quantile of the example data set.
        assert sketch.quantile(0.5) == 16.0
        assert sketch.quantile(0.9) == 30.0
        assert sketch.quantile(1.0) == 51.0
        assert sketch.quantile(0.1) == 3.0

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidValueError):
            KLLSketch(max_compactor_size=4)

    def test_rejects_non_finite(self):
        sketch = KLLSketch()
        with pytest.raises(InvalidValueError):
            sketch.update(float("nan"))

    def test_estimates_are_actual_stream_values(self, rng):
        # Sec 3.1: KLL estimates are values from the data set.
        data = np.round(rng.uniform(0, 1000, 20_000), 7)
        universe = set(data.tolist())
        sketch = KLLSketch(seed=3)
        sketch.update_batch(data)
        for q in (0.05, 0.3, 0.5, 0.77, 0.99):
            assert sketch.quantile(q) in universe

    def test_deterministic_with_seed(self, pareto_data):
        a = KLLSketch(seed=99)
        b = KLLSketch(seed=99)
        a.update_batch(pareto_data)
        b.update_batch(pareto_data)
        for q in (0.1, 0.5, 0.9):
            assert a.quantile(q) == b.quantile(q)


class TestCompaction:
    def test_space_stays_bounded(self, rng):
        sketch = KLLSketch(max_compactor_size=200, seed=1)
        sketch.update_batch(rng.uniform(0, 1, 200_000))
        # Space is O(k) with the geometric capacity schedule.
        assert sketch.num_retained < 4 * 200
        assert sketch.count == 200_000

    def test_retained_count_matches_buffers(self, rng):
        sketch = KLLSketch(max_compactor_size=64, seed=1)
        sketch.update_batch(rng.uniform(0, 1, 10_000))
        assert sketch.num_retained == sum(
            len(b) for b in sketch._compactors
        )

    def test_weights_preserve_total_count_approximately(self, rng):
        sketch = KLLSketch(max_compactor_size=128, seed=5)
        n = 50_000
        sketch.update_batch(rng.uniform(0, 1, n))
        values, weights = sketch._weighted_samples()
        # Compaction conserves weight in expectation; the odd leftover
        # items make it inexact but close.
        assert abs(int(weights.sum()) - n) / n < 0.05

    def test_levels_grow_logarithmically(self, rng):
        sketch = KLLSketch(max_compactor_size=128, seed=2)
        sketch.update_batch(rng.uniform(0, 1, 100_000))
        assert 5 <= sketch.num_levels <= 24

    def test_paper_retention_at_paper_scale(self, rng):
        # Sec 4.3: k = 350 retains ~1048 samples after 1M points.  At
        # 200k points the hierarchy is almost as deep; retention must
        # be in the same few-hundreds-to-~1300 band, not O(n).
        sketch = KLLSketch(max_compactor_size=350, seed=0)
        sketch.update_batch(rng.uniform(0, 1, 200_000))
        assert 600 <= sketch.num_retained <= 1500


class TestAccuracy:
    def test_rank_error_within_expected_bound(self, rng):
        sketch = KLLSketch(max_compactor_size=350, seed=7)
        data = rng.uniform(0, 1, 100_000)
        sketch.update_batch(data)
        s = np.sort(data)
        bound = 3 * sketch.expected_rank_error()  # ~3 sigma headroom
        for q in (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            est = sketch.quantile(q)
            rank = np.searchsorted(s, est, side="right") / s.size
            assert abs(rank - q) <= bound, (q, rank)

    def test_expected_rank_error_matches_paper(self):
        # Sec 4.2: k = 350 gives ~0.97% expected rank error.
        assert KLLSketch(350).expected_rank_error() == pytest.approx(
            0.0097, abs=0.0005
        )

    def test_high_relative_error_on_pareto_tail(self, rng):
        # Sec 4.5.1: small rank error is a large relative error at the
        # tail of a heavy-tailed distribution.
        data = 1.0 + rng.pareto(1.0, 100_000)
        kll = KLLSketch(max_compactor_size=350, seed=11)
        kll.update_batch(data)
        dds = DDSketch(alpha=0.01)
        dds.update_batch(data)
        true = true_quantiles(data, (0.99,))[0.99]
        kll_err = abs(kll.quantile(0.99) - true) / true
        dds_err = abs(dds.quantile(0.99) - true) / true
        assert kll_err > dds_err

    def test_accurate_on_repeated_values(self, rng):
        # Sec 4.5.3: repeated values survive compaction, so estimates
        # in dense regions are often exact.
        data = rng.choice([6.5, 7.5, 8.0, 9.0], 50_000)
        sketch = KLLSketch(seed=13)
        sketch.update_batch(data)
        assert sketch.quantile(0.25) in {6.5, 7.5}


class TestMerge:
    def test_merge_count_and_range(self, rng):
        a = KLLSketch(seed=1)
        b = KLLSketch(seed=2)
        a.update_batch(rng.uniform(0, 1, 10_000))
        b.update_batch(rng.uniform(9, 10, 10_000))
        a.merge(b)
        assert a.count == 20_000
        assert a.min < 1.0
        assert a.max > 9.0

    def test_merge_preserves_accuracy(self, rng):
        parts = [rng.uniform(0, 100, 20_000) for _ in range(5)]
        merged = KLLSketch(max_compactor_size=350, seed=0)
        for i, part in enumerate(parts):
            piece = KLLSketch(max_compactor_size=350, seed=i + 1)
            piece.update_batch(part)
            merged.merge(piece)
        data = np.concatenate(parts)
        s = np.sort(data)
        for q in (0.25, 0.5, 0.75, 0.95):
            est = merged.quantile(q)
            rank = np.searchsorted(s, est, side="right") / s.size
            assert abs(rank - q) < 0.04

    def test_merge_respects_capacity(self, rng):
        a = KLLSketch(max_compactor_size=128, seed=1)
        b = KLLSketch(max_compactor_size=128, seed=2)
        a.update_batch(rng.uniform(0, 1, 50_000))
        b.update_batch(rng.uniform(0, 1, 50_000))
        a.merge(b)
        assert a.num_retained <= a._total_capacity()

    def test_merge_wrong_type(self):
        with pytest.raises(IncompatibleSketchError):
            KLLSketch().merge(DDSketch())


class TestRank:
    def test_rank_consistent_with_quantile(self, rng):
        data = rng.uniform(0, 1, 50_000)
        sketch = KLLSketch(seed=21)
        sketch.update_batch(data)
        for q in (0.2, 0.5, 0.8):
            value = sketch.quantile(q)
            assert abs(sketch.rank(value) / sketch.count - q) < 0.05
