"""Unit tests for the Dyadic Count Sketch."""

import numpy as np
import pytest

from repro.core import DyadicCountSketch, KLLSketch
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    InvalidValueError,
)


@pytest.fixture
def filled():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 1 << 16, 100_000).astype(np.float64)
    sketch = DyadicCountSketch(universe_log2=16, seed=1)
    sketch.update_batch(data)
    return sketch, np.sort(data)


class TestConfiguration:
    def test_universe_bounds(self):
        with pytest.raises(InvalidValueError):
            DyadicCountSketch(universe_log2=0)
        with pytest.raises(InvalidValueError):
            DyadicCountSketch(universe_log2=64)

    def test_levels_count(self):
        sketch = DyadicCountSketch(universe_log2=12)
        assert sketch.num_levels == 12

    def test_values_must_be_in_universe(self):
        sketch = DyadicCountSketch(universe_log2=8)
        with pytest.raises(InvalidValueError):
            sketch.update(256.0)
        with pytest.raises(InvalidValueError):
            sketch.update(-1.0)

    def test_empty(self):
        with pytest.raises(EmptySketchError):
            DyadicCountSketch().quantile(0.5)


class TestQuantiles:
    def test_rank_error_small_on_uniform_keys(self, filled):
        sketch, sorted_data = filled
        for q in (0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
            est = sketch.quantile(q)
            rank = np.searchsorted(sorted_data, est, side="right")
            assert abs(rank / sorted_data.size - q) < 0.01, q

    def test_rank_monotone_in_value(self, filled):
        sketch, _ = filled
        ranks = [sketch.rank(v) for v in (0, 1 << 12, 1 << 14, 1 << 15)]
        assert ranks == sorted(ranks)

    def test_rank_extremes(self, filled):
        sketch, _ = filled
        assert sketch.rank(-5.0) == 0
        assert sketch.rank(float(1 << 16)) == sketch.count

    def test_quantile_within_observed_range(self, filled):
        sketch, sorted_data = filled
        assert sorted_data[0] <= sketch.quantile(0.001)
        assert sketch.quantile(1.0) <= sorted_data[-1]

    def test_values_floored_to_integers(self):
        sketch = DyadicCountSketch(universe_log2=8)
        sketch.update_batch([3.2, 3.7, 3.9])
        assert sketch.quantile(0.5) == 3.0


class TestTurnstile:
    def test_deletions_shift_quantiles(self):
        rng = np.random.default_rng(1)
        low = rng.integers(0, 100, 20_000).astype(np.float64)
        high = rng.integers(900, 1000, 20_000).astype(np.float64)
        sketch = DyadicCountSketch(universe_log2=10, seed=2)
        sketch.update_batch(low)
        sketch.update_batch(high)
        assert 90 <= sketch.quantile(0.5) <= 910
        sketch.delete_batch(low)
        assert sketch.count == 20_000
        # Only high values remain.
        assert sketch.quantile(0.25) >= 890

    def test_insert_delete_roundtrip_is_clean(self):
        sketch = DyadicCountSketch(universe_log2=10, seed=3)
        sketch.update_batch(np.arange(512, dtype=np.float64))
        sketch.delete_batch(np.arange(256, dtype=np.float64))
        assert sketch.count == 256
        assert sketch.rank(255.0) <= 30  # lower half mostly gone

    def test_cannot_delete_below_zero(self):
        sketch = DyadicCountSketch(universe_log2=8)
        sketch.update(4.0)
        with pytest.raises(InvalidValueError):
            sketch.delete_batch(np.asarray([4.0, 5.0]))


class TestSpaceClaim:
    def test_needs_more_space_than_kll(self, filled):
        # Sec 5.2.3: DCS's larger memory footprint (and required
        # universe knowledge) is why KLL superseded it.
        sketch, sorted_data = filled
        kll = KLLSketch(max_compactor_size=350, seed=0)
        kll.update_batch(sorted_data)
        assert sketch.size_bytes() > 10 * kll.size_bytes()


class TestMerge:
    def test_merge_combines(self):
        rng = np.random.default_rng(2)
        a = DyadicCountSketch(universe_log2=12, seed=5)
        b = DyadicCountSketch(universe_log2=12, seed=5)
        data_a = rng.integers(0, 1 << 12, 10_000).astype(np.float64)
        data_b = rng.integers(0, 1 << 12, 10_000).astype(np.float64)
        a.update_batch(data_a)
        b.update_batch(data_b)
        a.merge(b)
        assert a.count == 20_000
        merged = np.sort(np.concatenate([data_a, data_b]))
        est = a.quantile(0.5)
        rank = np.searchsorted(merged, est, side="right") / merged.size
        assert abs(rank - 0.5) < 0.01

    def test_merge_requires_same_config(self):
        a = DyadicCountSketch(universe_log2=12, seed=1)
        b = DyadicCountSketch(universe_log2=12, seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)
        with pytest.raises(IncompatibleSketchError):
            a.merge(DyadicCountSketch(universe_log2=10, seed=1))
        with pytest.raises(IncompatibleSketchError):
            a.merge(KLLSketch())
