"""Differential merge-equivalence harness.

The parallel subsystem is only admissible if shard-then-merge is
semantics-preserving: for every sketch in the registry, a
:class:`ShardedSketch` over *any* partition of a stream must answer
``quantile``/``rank``/``cdf``/``count`` within the sketch's documented
error bound of the sequentially-built sketch.  This file asserts that
for shard counts {1, 2, 7, 16}, both partitioners, and a set of
adversarial hand-built partitions (sorted, reversed, all-duplicates,
single-element shards), plus hypothesis-driven random splits.

Error accounting: rank-error sketches are judged on
:func:`repro.metrics.errors.rank_error` against the exact sorted data;
relative-value sketches (DDSketch family, HDR) on relative value error.
GK-style summaries sum their epsilons on merge (the classic
non-mergeability weakness), so their budget grows with shard count.
"""

from __future__ import annotations

import functools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DDSketch, KLLSketch, paper_config
from repro.core.registry import SKETCH_CLASSES
from repro.errors import ReproError
from repro.metrics.errors import rank_error
from repro.parallel import ShardedSketch
from repro.core.base import QuantileSketch

SEED = 20230328
SHARD_COUNTS = (1, 2, 7, 16)
QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)

#: Documented accuracy budget per sketch.  ``rank`` bounds cap
#: ``rank_error`` vs. the exact data; ``value`` bounds cap relative
#: value error.  Callables receive the shard count (GK merges sum
#: epsilons, so the merged budget scales with the number of merges).
BOUNDS: dict[str, tuple[str, object]] = {
    "kll": ("rank", 0.03),
    "kllpm": ("rank", 0.03),
    "req": ("rank", 0.05),
    "moments": ("rank", 0.10),
    "random": ("rank", 0.15),
    "tdigest": ("rank", 0.05),
    "dcs": ("rank", 0.05),
    "exact": ("rank", 1e-9),
    "gk": ("rank", lambda k: 0.01 * (k + 1) + 0.01),
    "gkarray": ("rank", lambda k: 0.01 * (k + 1) + 0.01),
    "ddsketch": ("value", 0.011),
    "uddsketch": ("value", None),  # sketch's own current_guarantee
    "hdr": ("value", 0.011),
}


def budget(name: str, sketch: QuantileSketch, n_shards: int) -> float:
    kind, bound = BOUNDS[name]
    if callable(bound):
        bound = bound(n_shards)
    if bound is None:
        bound = sketch.current_guarantee + 1e-9
    return float(bound)


def make(name):
    return paper_config(name, dataset="pareto", seed=SEED)


def stream_for(name: str, size: int = 6_000) -> np.ndarray:
    """A positive, bounded Pareto stream every sketch can ingest.

    DCS floors values into its integer universe, so it (and its exact
    baseline) get pre-floored data — comparing an integer sketch
    against fractional ground truth would measure the flooring, not
    the sharding.
    """
    rng = np.random.default_rng(SEED)
    data = np.clip(1.0 + rng.pareto(1.0, size), None, 1e5)
    if name == "dcs":
        data = np.floor(data)
    return data


def assert_within_budget(
    name: str,
    sharded: QuantileSketch,
    sequential: QuantileSketch,
    data: np.ndarray,
    n_shards: int,
) -> None:
    """The differential check shared by every equivalence test."""
    assert sharded.count == sequential.count == data.size
    assert sharded.min == sequential.min
    assert sharded.max == sequential.max
    kind, _ = BOUNDS[name]
    bound = budget(name, sequential, n_shards)
    sorted_data = np.sort(data)
    for q in QUANTILES:
        est = sharded.quantile(q)
        seq_err: float
        if kind == "rank":
            err = rank_error(sorted_data, q, est)
            seq_err = rank_error(sorted_data, q, sequential.quantile(q))
        else:
            true = float(
                sorted_data[max(math.ceil(q * sorted_data.size), 1) - 1]
            )
            err = abs(est - true) / true
            seq_err = abs(sequential.quantile(q) - true) / true
        # Within the documented bound, or no worse than the sequential
        # build plus noise headroom (randomized sketches wobble).
        assert err <= max(bound, seq_err + bound), (
            f"{name}: q={q} err={err:.4f} bound={bound:.4f} "
            f"seq_err={seq_err:.4f} shards={n_shards}"
        )
    # rank/cdf agree with the quantile answers' accounting.
    mid = float(np.median(data))
    assert 0 <= sharded.rank(mid) <= data.size
    assert 0.0 <= sharded.cdf(mid) <= 1.0
    if kind == "rank":
        assert abs(
            sharded.cdf(mid) - sequential.cdf(mid)
        ) <= 2 * bound


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("partitioner", ("round_robin", "hash"))
def test_sharded_matches_sequential(name, n_shards, partitioner):
    data = stream_for(name)
    sequential = make(name)
    sequential.update_batch(data)
    sharded = ShardedSketch(
        functools.partial(paper_config, name, dataset="pareto", seed=SEED),
        n_shards=n_shards,
        partitioner=partitioner,
    )
    # Chunked ingestion, as a stream would arrive.
    for start in range(0, data.size, 1_000):
        sharded.update_batch(data[start : start + 1_000])
    assert_within_budget(name, sharded, sequential, data, n_shards)


def merge_partition(name: str, parts: list[np.ndarray]) -> QuantileSketch:
    """Build one sketch per part and fold them together (shard-then-
    merge with a fully adversarial partition)."""
    shards = []
    for part in parts:
        shard = make(name)
        shard.update_batch(part)
        shards.append(shard)
    merged = make(name)
    for shard in shards:
        if not shard.is_empty:
            merged.merge(shard)
    return merged


def adversarial_partitions(data: np.ndarray) -> dict[str, list[np.ndarray]]:
    ordered = np.sort(data)
    k = 7
    return {
        # each shard gets a contiguous slab of the sorted stream —
        # maximally skewed value ranges per shard
        "sorted": np.array_split(ordered, k),
        "reversed": np.array_split(ordered[::-1], k),
        # one shard per element for the first 16 elements
        "single-element": [np.array([v]) for v in data[:16].tolist()],
    }


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
def test_adversarial_partitions(name):
    data = stream_for(name, size=3_500)
    for label, parts in adversarial_partitions(data).items():
        flat = np.concatenate(parts)
        sequential = make(name)
        sequential.update_batch(flat)
        merged = merge_partition(name, list(parts))
        assert_within_budget(
            name, merged, sequential, flat, len(parts)
        )


@pytest.mark.parametrize("name", sorted(SKETCH_CLASSES))
def test_all_duplicates_partition(name):
    """Every shard sees the same single value; behaviour (answer or a
    deliberate error, e.g. Moments' minimum-cardinality rule) must
    match the sequential build exactly."""
    value = 42.0
    parts = [np.full(50, value) for _ in range(7)]
    flat = np.concatenate(parts)
    sequential = make(name)
    sequential.update_batch(flat)
    merged = merge_partition(name, parts)
    assert merged.count == sequential.count == flat.size
    assert merged.min == sequential.min == value
    assert merged.max == sequential.max == value
    for q in (0.1, 0.5, 1.0):
        try:
            expected = sequential.quantile(q)
        except ReproError as exc:
            with pytest.raises(type(exc)):
                merged.quantile(q)
        else:
            got = merged.quantile(q)
            rel = abs(got - expected) / value
            assert rel <= 0.011, (q, got, expected)


class TestRandomSplitsProperty:
    """Hypothesis: arbitrary chunk boundaries never break equivalence."""

    @given(
        values=st.lists(
            st.floats(min_value=1e-3, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=8, max_size=300,
        ),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_ddsketch_shard_merge_is_exact(self, values, n_shards):
        # DDSketch merge is bucket-count addition: shard-then-merge is
        # *identical* to sequential, not just within-bound.
        data = np.asarray(values)
        sequential = DDSketch(alpha=0.01)
        sequential.update_batch(data)
        sharded = ShardedSketch(
            lambda: DDSketch(alpha=0.01),
            n_shards=n_shards,
            partitioner="hash",
        )
        sharded.update_batch(data)
        for q in (0.1, 0.5, 0.9, 1.0):
            assert sharded.quantile(q) == sequential.quantile(q)

    @given(
        # unique: rank error against a run of duplicates is ill-defined
        # (test_all_duplicates_partition covers that case separately).
        values=st.lists(
            st.floats(min_value=1e-3, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=16, max_size=400, unique=True,
        ),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_kll_sharded_within_rank_bound(self, values, n_shards):
        data = np.asarray(values)
        sharded = ShardedSketch(
            lambda: KLLSketch(max_compactor_size=350, seed=7),
            n_shards=n_shards,
            partitioner="round_robin",
        )
        sharded.update_batch(data)
        sorted_data = np.sort(data)
        for q in (0.25, 0.5, 0.9):
            err = rank_error(sorted_data, q, sharded.quantile(q))
            # k=350 on <=400 items retains everything, so the only
            # slack needed is rank discretization (1/N on small N).
            assert err <= 0.03 + 1.0 / data.size
