"""Determinism of the parallel subsystem.

Hash partitioning routes each value by its bit pattern, and every
randomized sketch in the registry draws from a seeded RNG, so the
whole parallel pipeline is a pure function of (stream, seed, shard
count): two runs must agree bit-for-bit, and so must the serial,
thread, and process backends — the process backend rebuilds each
shard's seeded RNG from the pickled factory, so even cross-process
results reproduce exactly.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core import paper_config
from repro.core.registry import SKETCH_CLASSES
from repro.experiments.config import BASE_SEED
from repro.parallel import ParallelIngestor, ShardedSketch
from repro.parallel.partition import hash_shard, hash_shard_ids

SEED = BASE_SEED
QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)

#: Representative spread: randomized compactor (kll), deterministic
#: buckets (ddsketch), randomized samplers (random, dcs), moments.
DETERMINISM_SKETCHES = ("kll", "ddsketch", "random", "dcs", "req")


def factory(name):
    return functools.partial(
        paper_config, name, dataset="pareto", seed=SEED
    )


def stream(name: str, size: int = 30_000) -> list[np.ndarray]:
    rng = np.random.default_rng(SEED)
    data = np.clip(1.0 + rng.pareto(1.0, size), None, 1e5)
    if name == "dcs":
        data = np.floor(data)
    return [data[start : start + 2_500] for start in range(0, size, 2_500)]


def fingerprint(sketch) -> tuple[float, ...]:
    return (float(sketch.count), sketch.min, sketch.max) + tuple(
        sketch.quantile(q) for q in QUANTILES
    )


@pytest.mark.parametrize("name", DETERMINISM_SKETCHES)
def test_two_runs_bit_identical(name):
    """Same seed, same stream, hash partitioning: identical answers."""
    runs = []
    for _ in range(2):
        sharded = ShardedSketch(
            factory(name), n_shards=4, partitioner="hash"
        )
        for batch in stream(name):
            sharded.update_batch(batch)
        runs.append(fingerprint(sharded))
    assert runs[0] == runs[1]


@pytest.mark.parametrize("name", DETERMINISM_SKETCHES)
def test_backends_bit_identical(name):
    """serial == thread == process, bit for bit.

    Each backend routes the same values to the same shards (hash
    partitioning is stateless) and each shard sketch is rebuilt from
    the same seeded factory, so scheduling cannot leak into results.
    """
    batches = stream(name)
    prints = {}
    for backend in ("serial", "thread", "process"):
        ingestor = ParallelIngestor(
            factory(name),
            n_shards=4,
            backend=backend,
            partitioner="hash",
        )
        prints[backend] = fingerprint(ingestor.ingest(batches))
    assert prints["serial"] == prints["thread"] == prints["process"]


@pytest.mark.parametrize("name", ("kll", "ddsketch", "random"))
def test_hash_routing_is_chunking_invariant(name):
    """Hash routing depends only on the value, so re-chunking the same
    stream (one big batch vs. many small ones) sends each value to the
    same shard.  Full bit-equality of answers additionally needs the
    inner sketch to be chunk-insensitive — true for DDSketch's bucket
    counters, but not for KLL, whose compaction schedule follows batch
    boundaries even when ingesting sequentially."""
    batches = stream(name)
    whole = np.concatenate(batches)
    coarse = ShardedSketch(factory(name), n_shards=7, partitioner="hash")
    coarse.update_batch(whole)
    fine = ShardedSketch(factory(name), n_shards=7, partitioner="hash")
    for batch in batches:
        fine.update_batch(batch)
    assert coarse.shard_counts() == fine.shard_counts()
    if name == "ddsketch":
        assert fingerprint(coarse) == fingerprint(fine)


def test_hash_shard_scalar_matches_vectorized():
    rng = np.random.default_rng(SEED)
    values = np.concatenate([
        rng.pareto(1.0, 500) + 1.0,
        np.array([0.0, -0.0, 1.0, -1.0, 1e-300, 1e300]),
    ])
    for n_shards in (1, 2, 7, 16):
        ids = hash_shard_ids(values, n_shards)
        assert all(
            hash_shard(float(v), n_shards) == int(i)
            for v, i in zip(values, ids)
        )


def test_hash_treats_signed_zero_as_one_value():
    assert hash_shard(0.0, 7) == hash_shard(-0.0, 7)


def test_round_robin_cursor_spans_batches():
    """The round-robin cursor continues across update_batch calls, so a
    chunked stream still balances shards exactly."""
    sharded = ShardedSketch(factory("kll"), n_shards=4)
    for size in (3, 5, 9, 7):  # deliberately not multiples of 4
        sharded.update_batch(np.arange(size, dtype=np.float64) + 1.0)
    counts = sharded.shard_counts()
    assert sum(counts) == 24
    assert max(counts) - min(counts) <= 1
