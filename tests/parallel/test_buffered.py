"""Concurrency stress tests for buffered ingestion.

Three layers, matching the ISSUE checklist:

* :class:`~repro.parallel.buffered.BufferedIngestor` against an exact
  recording oracle — N threads x M batches must land **exactly** the
  ingested multiset in the target: no lost values, no duplicates, and
  an exact ``count()`` when the target is a real sketch;
* crash-injected flushes (reusing the durability layer's
  :class:`~repro.durability.faults.CrashInjector` as the
  ``flush_hook``) — a flush that dies leaves the staged buffer intact,
  so the retry applies every value exactly once;
* the multi-worker TCP server — concurrent clients against
  ``ingest_workers > 1`` drain the coalescing queue to an exact total,
  and with durability attached a journal crash is **never acked**: the
  client sees the error, and a restarted server recovers exactly the
  acked prefix.
"""

import collections
import threading

import numpy as np
import pytest

from repro.core import DDSketch, KLLSketch
from repro.durability import DurabilityManager, FlushPolicy
from repro.durability.faults import CrashInjector, InjectedIOError
from repro.errors import InvalidValueError, ServiceError
from repro.obs.telemetry import Telemetry
from repro.parallel import BufferedIngestor
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)

# Every test here runs under the runtime lock sanitizer: acquisition
# order across the registry -> buffer -> target hierarchy is recorded
# and teardown fails on any ordering cycle (DESIGN §13).
pytestmark = pytest.mark.usefixtures("lock_sanitizer")


class RecordingSink:
    """Exact oracle target: keeps every applied value.

    Deliberately unsynchronised — ``BufferedIngestor``'s target lock is
    the only thing allowed to serialise ``update_batch`` calls, and the
    multiset comparison below would expose a race as lost updates.
    """

    def __init__(self) -> None:
        self.values: list[float] = []
        self.batches = 0

    def update_batch(self, values) -> None:
        self.batches += 1
        self.values.extend(np.asarray(values, dtype=np.float64).tolist())


class TestBufferedIngestorBasics:
    def test_buffer_size_validated(self):
        with pytest.raises(ValueError):
            BufferedIngestor(RecordingSink(), buffer_size=0)

    def test_flushes_in_buffer_sized_batches(self):
        sink = RecordingSink()
        ingestor = BufferedIngestor(sink, buffer_size=4)
        for value in range(10):
            ingestor.ingest(float(value))
        # Two full buffers applied, two values still staged.
        assert sink.batches == 2
        assert len(sink.values) == 8
        assert ingestor.pending() == 2
        ingestor.flush()
        assert ingestor.pending() == 0
        assert sink.values == [float(v) for v in range(10)]
        assert ingestor.target is sink

    def test_poisoned_batch_rejected_before_buffering(self):
        sink = RecordingSink()
        ingestor = BufferedIngestor(sink, buffer_size=8)
        ingestor.ingest_batch([1.0, 2.0])
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(InvalidValueError):
                ingestor.ingest_batch([3.0, bad, 4.0])
        # Nothing from the poisoned batches was staged or applied.
        assert ingestor.pending() == 2
        ingestor.flush()
        assert sink.values == [1.0, 2.0]

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        ingestor = BufferedIngestor(
            RecordingSink(), buffer_size=5, telemetry=telemetry
        )
        # A flush applies the whole staged buffer in one batch.
        ingestor.ingest_batch(np.arange(12, dtype=np.float64))
        snap = telemetry.snapshot()
        assert snap["counters"]["ingest.buffer.flushes"] == 1
        assert snap["counters"]["ingest.buffer.flushed_values"] == 12
        assert snap["gauges"]["ingest.buffer.occupancy"] == 0.0
        ingestor.ingest_batch(np.arange(3, dtype=np.float64))
        assert (
            telemetry.snapshot()["gauges"]["ingest.buffer.occupancy"] == 3.0
        )
        ingestor.flush()
        snap = telemetry.snapshot()
        assert snap["counters"]["ingest.buffer.flushes"] == 2
        assert snap["counters"]["ingest.buffer.flushed_values"] == 15
        assert snap["gauges"]["ingest.buffer.occupancy"] == 0.0


class TestBufferedIngestorConcurrency:
    N_THREADS = 8
    N_BATCHES = 40
    BATCH = 25

    def _stream(self, tid: int) -> np.ndarray:
        """Values globally unique to (thread, batch, index): a lost or
        duplicated value changes the multiset and fails the test."""
        base = tid * self.N_BATCHES * self.BATCH
        return np.arange(
            base, base + self.N_BATCHES * self.BATCH, dtype=np.float64
        )

    def _hammer(self, ingestor, on_error=None):
        def writer(tid: int) -> None:
            stream = self._stream(tid)
            for start in range(0, stream.size, self.BATCH):
                batch = stream[start : start + self.BATCH]
                try:
                    ingestor.ingest_batch(batch)
                except InjectedIOError:
                    # The values are already staged; the next flush
                    # (or the final barrier) carries them.
                    if on_error is not None:
                        on_error()

        threads = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ingestor.flush()

    def test_exact_multiset_no_lost_no_duplicated(self):
        sink = RecordingSink()
        ingestor = BufferedIngestor(sink, buffer_size=64)
        self._hammer(ingestor)
        total = self.N_THREADS * self.N_BATCHES * self.BATCH
        assert ingestor.pending() == 0
        assert len(sink.values) == total
        expected = collections.Counter(
            float(v) for tid in range(self.N_THREADS)
            for v in self._stream(tid).tolist()
        )
        assert collections.Counter(sink.values) == expected

    def test_exact_count_into_real_sketch(self):
        sketch = KLLSketch()
        ingestor = BufferedIngestor(sketch, buffer_size=128)
        self._hammer(ingestor)
        total = self.N_THREADS * self.N_BATCHES * self.BATCH
        assert sketch.count == total
        assert sketch.min == 0.0
        assert sketch.max == float(total - 1)

    def test_crashed_flush_keeps_buffer_and_retry_applies_once(self):
        sink = RecordingSink()
        injector = CrashInjector("ingest.flush")
        ingestor = BufferedIngestor(
            sink,
            buffer_size=4,
            flush_hook=lambda staged: injector("ingest.flush"),
        )
        with pytest.raises(InjectedIOError):
            ingestor.ingest_batch([1.0, 2.0, 3.0, 4.0])
        # The crash happened before the sketch mutated: everything is
        # still staged, nothing was applied.
        assert sink.values == []
        assert ingestor.pending() == 4
        # The injector is spent, so the retry applies exactly once.
        ingestor.flush()
        assert sink.values == [1.0, 2.0, 3.0, 4.0]
        assert ingestor.pending() == 0

    def test_concurrent_crashes_lose_nothing(self):
        sink = RecordingSink()
        injector = CrashInjector("ingest.flush", countdown=5)
        errors = []
        ingestor = BufferedIngestor(
            sink,
            buffer_size=32,
            flush_hook=lambda staged: injector("ingest.flush"),
        )
        self._hammer(ingestor, on_error=lambda: errors.append(1))
        assert injector.fired
        assert len(errors) == 1
        total = self.N_THREADS * self.N_BATCHES * self.BATCH
        assert len(sink.values) == total
        expected = collections.Counter(
            float(v) for tid in range(self.N_THREADS)
            for v in self._stream(tid).tolist()
        )
        assert collections.Counter(sink.values) == expected


def make_registry(clock):
    return MetricRegistry(
        sketch_factory=lambda: DDSketch(alpha=0.01),
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=100_000,
    )


class TestMultiWorkerServerIngest:
    def test_concurrent_clients_exact_total(self):
        n_clients, n_batches, batch = 6, 20, 50
        with QuantileServer(
            make_registry(ManualClock(0.0)),
            ingest_workers=4,
            ingest_coalesce=16,
        ) as server:
            host, port = server.address
            failures = []

            def client_thread(cid: int) -> None:
                try:
                    rng = np.random.default_rng(cid)
                    with QuantileClient(
                        host, port, timeout=10.0, retries=0
                    ) as cli:
                        for _ in range(n_batches):
                            values = rng.uniform(1.0, 100.0, batch)
                            accepted = cli.ingest(
                                "lat", values, timestamp_ms=0.0
                            )
                            assert accepted == batch
                except Exception as exc:  # noqa: BLE001 - reraised below
                    failures.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(cid,))
                for cid in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures

            with QuantileClient(host, port, timeout=10.0, retries=0) as cli:
                cli.flush()
                assert cli.count("lat") == n_clients * n_batches * batch
                assert 1.0 <= cli.quantile("lat", 0.5) <= 100.0


class TestCrashedJournalNeverAcked:
    def test_unjournaled_values_not_acked_and_not_recovered(self, tmp_path):
        clock = ManualClock(0.0)
        manager = DurabilityManager(
            tmp_path,
            clock=clock,
            flush_policy=FlushPolicy(mode="always"),
            checkpoint_interval_ms=0.0,
            fault=CrashInjector("wal.append", countdown=4),
        )
        acked = 0
        rejected = 0
        with QuantileServer(make_registry(clock), durability=manager) as srv:
            host, port = srv.address
            with QuantileClient(host, port, timeout=5.0, retries=0) as cli:
                rng = np.random.default_rng(7)
                for _ in range(8):
                    values = rng.uniform(1.0, 100.0, 10)
                    try:
                        acked += cli.ingest("lat", values, timestamp_ms=0.0)
                    except ServiceError:
                        # The 4th append dies and the WAL poisons
                        # itself (fail-stop): stop writing, like a
                        # client whose retries are exhausted.
                        rejected += 1
                        break
                cli.flush()
                assert rejected == 1
                # Exactly the journaled prefix was acked, and the
                # server never counts what it never acked.
                assert cli.count("lat") == acked == 30

        # Restart from the WAL: recovery reproduces the acked prefix
        # exactly — the crashed batch left no trace in the journal.
        fresh = DurabilityManager(
            tmp_path,
            clock=ManualClock(0.0),
            flush_policy=FlushPolicy(mode="always"),
            checkpoint_interval_ms=0.0,
        )
        with QuantileServer(
            make_registry(ManualClock(0.0)), durability=fresh
        ) as srv:
            host, port = srv.address
            with QuantileClient(host, port, timeout=5.0, retries=0) as cli:
                assert cli.count("lat") == acked
