"""Soak test: sustained ingestion under concurrent queries.

One million Pareto-distributed events stream through
:class:`ParallelIngestor.ingest_into` (thread backend) while reader
threads hammer the same :class:`ShardedSketch` with ``quantile``,
``cdf``, and ``rank`` calls.  The point is the concurrency contract,
not accuracy: no call may raise, every CDF snapshot a reader observes
must be monotone with values in [0, 1], and when the dust settles the
sketch must have counted exactly what was ingested.

Marked ``slow``: excluded from the tier-1 gate (``make test-fast``),
run by ``make test-all``.
"""

from __future__ import annotations

import functools
import threading
import time

import numpy as np
import pytest

from repro.core import paper_config
from repro.experiments.config import BASE_SEED
from repro.parallel import ParallelIngestor, ShardedSketch

TOTAL = 1_000_000
BATCH = 20_000
N_SHARDS = 4
N_READERS = 3
QS = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)


@pytest.mark.slow
@pytest.mark.parametrize("name", ("kll", "ddsketch"))
def test_soak_parallel_ingest_under_queries(name):
    rng = np.random.default_rng(BASE_SEED)
    values = np.clip(1.0 + rng.pareto(1.0, TOTAL), None, 1e6)
    batches = [
        values[start : start + BATCH]
        for start in range(0, TOTAL, BATCH)
    ]
    factory = functools.partial(
        paper_config, name, dataset="pareto", seed=BASE_SEED
    )
    sharded = ShardedSketch(factory, n_shards=N_SHARDS, partitioner="hash")
    # Prime the sketch so readers never race the very first insert
    # against EmptySketchError.
    sharded.update_batch(batches[0])

    ingestor = ParallelIngestor(
        factory, n_shards=N_SHARDS, backend="thread", partitioner="hash"
    )
    stop = threading.Event()
    errors: list[BaseException] = []
    snapshots = 0
    snapshot_lock = threading.Lock()

    def reader() -> None:
        nonlocal snapshots
        probe = np.quantile(values, QS)  # fixed probe points
        while not stop.is_set():
            try:
                quantile_answers = [sharded.quantile(q) for q in QS]
                assert all(
                    np.isfinite(answer) for answer in quantile_answers
                )
                cdf_curve = [sharded.cdf(x) for x in probe]
                # Monotone, and a genuine CDF: each value in [0, 1].
                assert all(
                    0.0 <= c <= 1.0 for c in cdf_curve
                ), cdf_curve
                assert all(
                    a <= b + 1e-12
                    for a, b in zip(cdf_curve, cdf_curve[1:])
                ), cdf_curve
                ranks = [sharded.rank(x) for x in probe]
                assert all(
                    0 <= r <= TOTAL for r in ranks
                ), ranks
                with snapshot_lock:
                    snapshots += 1
            except BaseException as exc:  # noqa: BLE001 - soak collector
                errors.append(exc)
                return

    threads = [
        threading.Thread(target=reader, daemon=True)
        for _ in range(N_READERS)
    ]
    for thread in threads:
        thread.start()
    try:
        ingestor.ingest_into(sharded, batches[1:])
        # Fast ingesters (DDSketch) can drain the stream before a
        # reader completes its first snapshot; keep readers running
        # until at least one full snapshot lands.
        for _ in range(600):
            with snapshot_lock:
                if snapshots > 0:
                    break
            if errors:
                break
            time.sleep(0.05)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    assert not errors, errors[:3]
    assert all(not thread.is_alive() for thread in threads)
    assert snapshots > 0, "readers never completed a snapshot"
    # Nothing lost, nothing double-counted.
    assert sharded.count == TOTAL
    assert sum(sharded.shard_counts()) == TOTAL
    assert sharded.min == float(values.min())
    assert sharded.max == float(values.max())
    # Post-quiescence sanity: the final view is a plausible sketch of
    # the stream (loose bound; accuracy is the differential harness's
    # job, not the soak's).
    median = sharded.quantile(0.5)
    true_median = float(np.quantile(values, 0.5))
    assert abs(median - true_median) / true_median < 0.25
