"""Tests for the sharded parallel ingestion subsystem."""
