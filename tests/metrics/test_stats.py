"""Unit tests for statistical helpers."""

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.metrics.stats import (
    MeanWithCI,
    excess_kurtosis,
    mean_with_ci,
    summarize,
)


class TestMeanWithCI:
    def test_single_sample_zero_width(self):
        ci = mean_with_ci(np.asarray([5.0]))
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_constant_samples_zero_width(self):
        ci = mean_with_ci(np.full(10, 3.0))
        assert ci.mean == 3.0
        assert ci.half_width == pytest.approx(0.0)

    def test_width_shrinks_with_sample_size(self, rng):
        small = mean_with_ci(rng.normal(0, 1, 10))
        large = mean_with_ci(rng.normal(0, 1, 1_000))
        assert large.half_width < small.half_width

    def test_covers_true_mean_usually(self, rng):
        # ~95% coverage: over 200 trials, at least 85% must cover.
        covered = 0
        for _ in range(200):
            samples = rng.normal(10.0, 2.0, 20)
            ci = mean_with_ci(samples)
            if ci.low <= 10.0 <= ci.high:
                covered += 1
        assert covered >= 170

    def test_overlap_detection(self):
        a = MeanWithCI(1.0, 0.5, 10)
        b = MeanWithCI(1.8, 0.4, 10)
        c = MeanWithCI(3.0, 0.2, 10)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_str_renders(self):
        assert "±" in str(MeanWithCI(1.0, 0.1, 5))

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            mean_with_ci(np.zeros(0))
        with pytest.raises(InvalidValueError):
            mean_with_ci(np.ones(3), confidence=1.5)


class TestKurtosis:
    def test_normal_is_zero(self, rng):
        k = excess_kurtosis(rng.normal(0, 1, 500_000))
        assert abs(k) < 0.1

    def test_uniform_is_minus_1_2(self, rng):
        k = excess_kurtosis(rng.uniform(0, 1, 500_000))
        assert k == pytest.approx(-1.2, abs=0.05)

    def test_heavy_tail_is_large(self, rng):
        k = excess_kurtosis(1.0 + rng.pareto(1.0, 100_000))
        assert k > 100

    def test_needs_samples(self):
        with pytest.raises(InvalidValueError):
            excess_kurtosis(np.ones(3))


class TestSummarize:
    def test_fields(self, rng):
        stats = summarize(rng.uniform(0, 1, 10_000))
        assert set(stats) == {
            "count", "mean", "std", "min", "p25", "median", "p75",
            "max", "kurtosis",
        }
        assert stats["count"] == 10_000
        assert stats["min"] <= stats["p25"] <= stats["median"]
        assert stats["median"] <= stats["p75"] <= stats["max"]

    def test_empty_rejected(self):
        with pytest.raises(InvalidValueError):
            summarize(np.zeros(0))
