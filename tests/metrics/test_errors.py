"""Unit tests for error metrics (Sec 2.2 of the paper)."""

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.metrics.errors import (
    MID_QUANTILES,
    PAPER_QUANTILES,
    UPPER_QUANTILES,
    grouped_errors,
    rank_error,
    relative_error,
    true_quantile,
)

#: The paper's running example data set (Table 1).
TABLE1 = np.asarray([3, 8, 11, 14, 16, 19, 25, 29, 30, 51], dtype=float)


class TestRelativeError:
    def test_papers_worked_example(self):
        # Sec 2.2: true 0.9-quantile 30, estimate 18 -> 40% relative.
        assert relative_error(30.0, 18.0) == pytest.approx(0.4)

    def test_exact_estimate_is_zero(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_symmetric_in_magnitude(self):
        assert relative_error(10.0, 12.0) == pytest.approx(0.2)
        assert relative_error(10.0, 8.0) == pytest.approx(0.2)

    def test_negative_true_value(self):
        assert relative_error(-10.0, -8.0) == pytest.approx(0.2)

    def test_zero_true_value(self):
        assert relative_error(0.0, 0.0) == 0.0
        with pytest.raises(InvalidValueError):
            relative_error(0.0, 1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(InvalidValueError):
            relative_error(float("nan"), 1.0)


class TestRankError:
    def test_papers_worked_example_structure(self):
        # Sec 2.2's example: an estimate one rank below the true 0.9
        # quantile has rank error 0.1.  (On this data set 29 is the
        # rank-8 item just below the rank-9 true quantile 30.)
        assert rank_error(TABLE1, 0.9, 29.0) == pytest.approx(0.1)

    def test_exact_estimate(self):
        assert rank_error(TABLE1, 0.9, 30.0) == pytest.approx(0.0)

    def test_rank_vs_relative_disagree_on_tails(self):
        # The motivating observation of Sec 2.2: a tiny rank error can
        # be a large relative error at the tail.
        rank = rank_error(TABLE1, 0.9, 29.0)
        relative = relative_error(30.0, 18.0)
        assert rank == pytest.approx(0.1)
        assert relative == pytest.approx(0.4)
        assert relative > rank

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            rank_error(np.zeros(0), 0.5, 1.0)
        with pytest.raises(InvalidValueError):
            rank_error(TABLE1, 0.0, 1.0)


class TestTrueQuantile:
    def test_table1_values(self):
        # Table 1: Quantile^-1 mapping of the example data.
        for q, expected in zip(
            (0.1, 0.2, 0.5, 0.9, 1.0), (3, 8, 16, 30, 51)
        ):
            assert true_quantile(TABLE1, q) == expected

    def test_rounds_rank_up(self):
        assert true_quantile(TABLE1, 0.05) == 3
        assert true_quantile(TABLE1, 0.11) == 8

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            true_quantile(np.zeros(0), 0.5)
        with pytest.raises(InvalidValueError):
            true_quantile(TABLE1, 1.5)


class TestGrouping:
    def test_paper_quantile_sets(self):
        # Sec 4.2 defines the groups.
        assert MID_QUANTILES == (0.05, 0.25, 0.5, 0.75, 0.9)
        assert UPPER_QUANTILES == (0.95, 0.98)
        assert set(MID_QUANTILES + UPPER_QUANTILES + (0.99,)) == set(
            PAPER_QUANTILES
        )

    def test_grouped_errors_means(self):
        errors = {q: 0.01 for q in MID_QUANTILES}
        errors.update({0.95: 0.02, 0.98: 0.04, 0.99: 0.5})
        groups = grouped_errors(errors)
        assert groups["mid"] == pytest.approx(0.01)
        assert groups["upper"] == pytest.approx(0.03)
        assert groups["p99"] == pytest.approx(0.5)

    def test_partial_quantiles(self):
        groups = grouped_errors({0.5: 0.1})
        assert groups == {"mid": pytest.approx(0.1)}
