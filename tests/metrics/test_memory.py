"""Unit tests for memory accounting."""

import pytest

from repro.core import DDSketch, MomentsSketch
from repro.metrics.memory import compression_ratio, sketch_size_kb


class TestSketchSizeKB:
    def test_moments_is_tiny(self, rng):
        # Table 3: Moments Sketch is 0.14 KB regardless of data.
        sketch = MomentsSketch(num_moments=12)
        sketch.update_batch(rng.uniform(1, 10, 100_000))
        assert sketch_size_kb(sketch) == pytest.approx(0.14, abs=0.03)

    def test_kb_conversion(self, rng):
        sketch = DDSketch()
        sketch.update_batch(rng.uniform(1, 10, 1_000))
        assert sketch_size_kb(sketch) == sketch.size_bytes() / 1000.0


class TestCompressionRatio:
    def test_empty_sketch(self):
        assert compression_ratio(DDSketch()) == 0.0

    def test_grows_with_stream_length(self, rng):
        sketch = DDSketch()
        sketch.update_batch(rng.uniform(1, 10, 1_000))
        small = compression_ratio(sketch)
        sketch.update_batch(rng.uniform(1, 10, 99_000))
        assert compression_ratio(sketch) > small

    def test_sketch_actually_compresses(self, rng):
        sketch = DDSketch()
        sketch.update_batch(rng.uniform(1, 10, 1_000_000))
        assert compression_ratio(sketch) > 1_000
