"""Exporter tests: canonical JSON, Prometheus text, snapshot diffs."""

import io
import json

import pytest

from repro.errors import InvalidValueError
from repro.obs.export import (
    _prom_name,
    diff_snapshots,
    to_canonical_json,
    to_prometheus,
    write_json,
    write_prometheus,
)
from repro.obs.telemetry import Telemetry
from repro.service.clock import ManualClock


def make_snapshot():
    clock = ManualClock(0.0)
    telemetry = Telemetry(clock=clock)
    telemetry.counter("server.shed_requests").inc(2)
    telemetry.gauge("server.ingest_queue_depth").set(5.0)
    with telemetry.span("server.op.quantile"):
        clock.advance(1.5)
    return telemetry.snapshot()


class TestCanonicalJson:
    def test_equal_content_is_byte_identical(self):
        a = to_canonical_json({"b": 1, "a": {"d": 2, "c": 3}})
        b = to_canonical_json({"a": {"c": 3, "d": 2}, "b": 1})
        assert a == b == '{"a":{"c":3,"d":2},"b":1}'

    def test_round_trips_through_json(self):
        snapshot = make_snapshot()
        assert json.loads(to_canonical_json(snapshot)) == snapshot

    def test_nonfinite_values_are_rejected(self):
        with pytest.raises(InvalidValueError):
            to_canonical_json({"bad": float("inf")})

    def test_unencodable_values_are_rejected(self):
        with pytest.raises(InvalidValueError):
            to_canonical_json({"bad": object()})


class TestPrometheus:
    def test_name_mangling(self):
        assert _prom_name("server.op.quantile") == "server_op_quantile"
        assert _prom_name("ingest.shard.0.values") == (
            "ingest_shard_0_values"
        )
        assert _prom_name("9lives") == "_9lives"

    def test_exposition_format(self):
        text = to_prometheus(make_snapshot())
        lines = text.splitlines()
        assert "# TYPE server_shed_requests counter" in lines
        assert "server_shed_requests 2" in lines
        assert "# TYPE server_ingest_queue_depth gauge" in lines
        assert "server_ingest_queue_depth 5" in lines
        assert "# TYPE span_server_op_quantile_us summary" in lines
        assert "span_server_op_quantile_us_count 1" in lines
        quantile_lines = [
            line for line in lines
            if line.startswith('span_server_op_quantile_us{quantile=')
        ]
        assert len(quantile_lines) == 3
        assert text.endswith("\n")

    def test_empty_histogram_exports_only_its_count(self):
        snapshot = {
            "enabled": True,
            "counters": {},
            "gauges": {},
            "histograms": {"quiet": {"unit": "us", "count": 0}},
        }
        text = to_prometheus(snapshot)
        assert "quiet_us_count 0" in text
        assert "quantile=" not in text


class TestDiff:
    def test_counters_diff_and_zero_deltas_drop_out(self):
        before = {"counters": {"a": 1, "b": 5}}
        after = {"counters": {"a": 4, "b": 5, "c": 2}}
        diff = diff_snapshots(before, after)
        assert diff["counters"] == {"a": 3, "c": 2}

    def test_histograms_report_after_summary_with_count_delta(self):
        before = {"histograms": {"h": {"count": 2, "p50": 10.0}}}
        after = {"histograms": {"h": {"count": 5, "p50": 12.0}}}
        diff = diff_snapshots(before, after)
        assert diff["histograms"]["h"]["count_delta"] == 3
        assert diff["histograms"]["h"]["p50"] == 12.0

    def test_gauges_pass_through_as_levels(self):
        diff = diff_snapshots(
            {"gauges": {"depth": 9.0}}, {"gauges": {"depth": 4.0}}
        )
        assert diff["gauges"] == {"depth": 4.0}


class TestWriters:
    def test_write_json_appends_newline(self):
        stream = io.StringIO()
        write_json({"counters": {}}, stream)
        assert stream.getvalue().endswith("\n")
        assert json.loads(stream.getvalue()) == {"counters": {}}

    def test_write_prometheus(self):
        stream = io.StringIO()
        write_prometheus(make_snapshot(), stream)
        assert "server_shed_requests 2" in stream.getvalue()
