"""Unit tests for the metric primitives (counter, gauge, histogram)."""

import threading

import pytest

from repro.errors import EmptySketchError
from repro.obs.metrics import (
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    Counter,
    Gauge,
    LatencyHistogram,
    _percentile_label,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert counter.name == "requests"

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("c")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_overwrites_and_add_adjusts(self):
        gauge = Gauge("depth")
        assert gauge.value == 0.0
        gauge.set(12.5)
        assert gauge.value == 12.5
        gauge.add(-2.5)
        assert gauge.value == 10.0


class TestLatencyHistogram:
    def test_percentiles_come_from_the_self_hosted_ddsketch(self):
        histogram = LatencyHistogram("op")
        for micros in range(1, 1001):
            histogram.record_us(float(micros))
        assert histogram.count == 1000
        # DDSketch's relative-error guarantee: within 1% of truth.
        assert histogram.quantile(0.5) == pytest.approx(500.0, rel=0.02)
        p50, p99 = histogram.quantiles((0.5, 0.99))
        assert p50 == pytest.approx(500.0, rel=0.02)
        assert p99 == pytest.approx(990.0, rel=0.02)

    def test_negative_samples_clamp_to_zero(self):
        histogram = LatencyHistogram("op")
        histogram.record_us(-5.0)
        assert histogram.count == 1
        assert histogram.quantile(0.5) == 0.0

    def test_empty_summary_is_just_a_zero_count(self):
        # No min=inf/max=-inf may ever reach an exporter.
        assert LatencyHistogram("op").summary() == {"count": 0}

    def test_summary_reports_count_bounds_and_percentiles(self):
        histogram = LatencyHistogram("op")
        for micros in (10.0, 20.0, 30.0):
            histogram.record_us(micros)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 10.0
        assert summary["max"] == 30.0
        assert set(summary) == {"count", "min", "max", "p50", "p90", "p99"}


class TestPercentileLabel:
    @pytest.mark.parametrize(
        "q,label",
        [(0.5, "50"), (0.9, "90"), (0.99, "99"), (0.999, "99.9")],
    )
    def test_labels(self, q, label):
        assert _percentile_label(q) == label


class TestNoopInstruments:
    def test_noop_counter_and_gauge_swallow_everything(self):
        NOOP_COUNTER.inc(100)
        assert NOOP_COUNTER.value == 0
        NOOP_GAUGE.set(5.0)
        NOOP_GAUGE.add(1.0)
        assert NOOP_GAUGE.value == 0.0

    def test_noop_histogram_records_nothing_and_refuses_quantiles(self):
        NOOP_HISTOGRAM.record_us(10.0)
        assert NOOP_HISTOGRAM.count == 0
        assert NOOP_HISTOGRAM.summary() == {"count": 0}
        with pytest.raises(EmptySketchError):
            NOOP_HISTOGRAM.quantile(0.5)
