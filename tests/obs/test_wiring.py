"""The observability layer wired through every instrumented subsystem.

Each test drives a real code path (live TCP server, retrying client,
parallel ingestor, streaming engine) with a shared
:class:`~repro.obs.telemetry.Telemetry` and asserts the documented
instruments actually fill — the contract the snapshot exporters and the
service benchmark's telemetry field depend on.
"""

import numpy as np
import pytest

from repro.core import DDSketch
from repro.core.registry import paper_config
from repro.data.streams import EventBatch
from repro.errors import ServerOverloadedError, ServiceUnavailableError
from repro.obs.telemetry import Telemetry
from repro.parallel import ParallelIngestor
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)
from repro.streaming import (
    CollectingAggregator,
    StreamEnvironment,
    TumblingEventTimeWindows,
    run_tumbling_batch,
)


def make_server(telemetry, **kwargs):
    registry = MetricRegistry(
        sketch_factory=lambda: DDSketch(alpha=0.01),
        clock=ManualClock(0.0),
        partition_ms=1_000.0,
        fine_partitions=100_000,
        telemetry=telemetry,
    )
    return QuantileServer(registry, telemetry=telemetry, **kwargs)


class TestServerInstrumentation:
    def test_op_spans_land_in_self_hosted_histograms(self):
        telemetry = Telemetry()
        with make_server(telemetry) as server:
            host, port = server.address
            with QuantileClient(host, port, retries=0) as client:
                client.ingest("lat", [1.0, 2.0, 3.0], timestamp_ms=0.0)
                client.flush()
                client.quantile("lat", 0.5)
                client.quantile("lat", 0.9)
                client.rank("lat", 2.0)
        snap = telemetry.snapshot()
        quantile_spans = snap["histograms"]["span.server.op.quantile"]
        assert quantile_spans["count"] == 2
        assert quantile_spans["p50"] > 0.0
        assert snap["histograms"]["span.server.op.rank"]["count"] == 1
        assert snap["histograms"]["span.server.op.ingest"]["count"] == 1
        assert snap["histograms"]["span.server.drain_batch"]["count"] >= 1

    def test_shedding_increments_the_counter_and_sets_queue_depth(self):
        telemetry = Telemetry()
        with make_server(telemetry, ingest_queue_size=1) as server:
            server.pause_ingest()
            host, port = server.address
            with QuantileClient(host, port, retries=0) as client:
                with pytest.raises(ServerOverloadedError):
                    # One batch may park in the paused drain worker and
                    # one fills the queue; a few more guarantee a shed.
                    for _ in range(8):
                        client.ingest("lat", [1.0], timestamp_ms=0.0)
            server.resume_ingest()
            server.flush()
        snap = telemetry.snapshot()
        assert snap["counters"]["server.shed_requests"] >= 1
        assert "server.ingest_queue_depth" in snap["gauges"]

    def test_store_view_cache_hits_and_misses_are_counted(self):
        telemetry = Telemetry()
        with make_server(telemetry) as server:
            host, port = server.address
            with QuantileClient(host, port, retries=0) as client:
                client.ingest("lat", [1.0, 2.0], timestamp_ms=0.0)
                client.flush()
                client.quantile("lat", 0.5)  # build the merged view
                client.quantile("lat", 0.9)  # reuse it
        counters = telemetry.snapshot()["counters"]
        assert counters["store.view_cache_miss"] >= 1
        assert counters["store.view_cache_hit"] >= 1


class TestClientInstrumentation:
    def test_retries_and_backoff_are_counted(self):
        telemetry = Telemetry()
        # Grab a port that is almost certainly closed: bind-and-release.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = QuantileClient(
            "127.0.0.1",
            dead_port,
            timeout=0.2,
            retries=2,
            backoff_ms=50.0,
            sleep=lambda seconds: None,
            telemetry=telemetry,
        )
        with pytest.raises(ServiceUnavailableError):
            client.ping()
        counters = telemetry.snapshot()["counters"]
        assert counters["client.transport_retries"] == 2
        # Exponential: 50ms then 100ms.
        assert counters["client.backoff_total_ms"] == 150


class TestIngestorInstrumentation:
    def test_round_robin_routing_reports_balanced_shards(self):
        telemetry = Telemetry()
        ingestor = ParallelIngestor(
            lambda: paper_config("kll", seed=11),
            n_shards=4,
            backend="serial",
            telemetry=telemetry,
        )
        sharded = ingestor.ingest([np.linspace(1.0, 50.0, 128)])
        assert sharded.count == 128
        snap = telemetry.snapshot()
        per_shard = [
            snap["counters"][f"ingest.shard.{shard}.values"]
            for shard in range(4)
        ]
        assert sum(per_shard) == 128
        assert per_shard == [32, 32, 32, 32]
        assert snap["gauges"]["ingest.shard_imbalance"] == 1.0

    def test_live_ingest_into_reports_per_batch(self):
        from repro.parallel import ShardedSketch

        telemetry = Telemetry()
        ingestor = ParallelIngestor(
            lambda: paper_config("kll", seed=11),
            n_shards=2,
            backend="thread",
            telemetry=telemetry,
        )
        sharded = ShardedSketch(
            lambda: paper_config("kll", seed=11), n_shards=2
        )
        ingestor.ingest_into(
            sharded, [np.arange(1.0, 11.0), np.arange(11.0, 21.0)]
        )
        snap = telemetry.snapshot()
        total = sum(
            snap["counters"][f"ingest.shard.{shard}.values"]
            for shard in range(2)
        )
        assert total == 20
        assert snap["gauges"]["ingest.shard_imbalance"] >= 1.0


class TestStreamingInstrumentation:
    @staticmethod
    def _batch():
        values = np.arange(1.0, 7.0)
        times = np.array([0.0, 500.0, 999.0, 1_000.0, 1_500.0, 2_100.0])
        return EventBatch(values, times, times.copy())

    def test_windowed_aggregate_counts_and_times_emissions(self):
        telemetry = Telemetry()
        env = StreamEnvironment()
        report = (
            env.from_batch(self._batch())
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(CollectingAggregator(), telemetry=telemetry)
        )
        assert len(report.results) == 3
        snap = telemetry.snapshot()
        assert snap["counters"]["streaming.windows_emitted"] == 3
        assert snap["histograms"]["span.streaming.window_emit"][
            "count"
        ] == 3

    def test_run_tumbling_batch_is_instrumented_too(self):
        telemetry = Telemetry()
        report = run_tumbling_batch(
            self._batch(),
            window_size_ms=1_000.0,
            aggregator=CollectingAggregator(),
            telemetry=telemetry,
        )
        assert len(report.results) == 3
        snap = telemetry.snapshot()
        assert snap["counters"]["streaming.windows_emitted"] == 3
        assert snap["histograms"]["span.streaming.window_emit"][
            "count"
        ] == 3
