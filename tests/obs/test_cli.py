"""``python -m repro.obs`` CLI: dump and diff snapshot files."""

import json
import subprocess
import sys

import pytest

from repro.obs.cli import main
from repro.obs.export import diff_snapshots, to_canonical_json


@pytest.fixture()
def snapshot_file(tmp_path):
    snapshot = {
        "enabled": True,
        "counters": {"server.shed_requests": 2},
        "gauges": {"server.ingest_queue_depth": 5.0},
        "histograms": {
            "span.server.op.quantile": {
                "unit": "us", "count": 3, "min": 10.0, "max": 30.0,
                "p50": 20.0, "p90": 29.0, "p99": 30.0,
            },
        },
    }
    path = tmp_path / "snapshot.json"
    path.write_text(to_canonical_json(snapshot) + "\n")
    return path, snapshot


class TestDump:
    def test_table_is_the_default(self, snapshot_file, capsys):
        path, _ = snapshot_file
        assert main(["dump", str(path)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "server.shed_requests" in out
        assert "histograms (us):" in out
        assert "count=3" in out

    def test_json_format_re_emits_canonically(self, snapshot_file, capsys):
        path, snapshot = snapshot_file
        assert main(["dump", str(path), "--format", "json"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == to_canonical_json(snapshot)
        assert json.loads(out) == snapshot

    def test_prom_format(self, snapshot_file, capsys):
        path, _ = snapshot_file
        assert main(["dump", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "server_shed_requests 2" in out
        assert "span_server_op_quantile_us_count 3" in out


class TestDiff:
    def test_diff_matches_the_library_function(
        self, snapshot_file, tmp_path, capsys
    ):
        path, snapshot = snapshot_file
        later = json.loads(json.dumps(snapshot))
        later["counters"]["server.shed_requests"] = 7
        later["histograms"]["span.server.op.quantile"]["count"] = 10
        after = tmp_path / "after.json"
        after.write_text(to_canonical_json(later) + "\n")
        assert main(["diff", str(path), str(after)]) == 0
        out = capsys.readouterr().out.strip()
        assert out == to_canonical_json(diff_snapshots(snapshot, later))
        decoded = json.loads(out)
        assert decoded["counters"]["server.shed_requests"] == 5
        assert decoded["histograms"]["span.server.op.quantile"][
            "count_delta"
        ] == 7


class TestErrors:
    def test_missing_file_exits_nonzero_with_stderr(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["dump", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_non_object_snapshot_rejected(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1,2,3]\n")
        assert main(["dump", str(path)]) == 1
        assert "not a JSON object" in capsys.readouterr().err


def test_module_entrypoint_runs(snapshot_file):
    path, _ = snapshot_file
    result = subprocess.run(
        [sys.executable, "-m", "repro.obs", "dump", str(path)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    assert "server.shed_requests" in result.stdout
