"""Tracer and Telemetry behavior under a deterministic manual clock."""

import threading

import pytest

from repro.obs.metrics import NOOP_COUNTER, NOOP_GAUGE, NOOP_HISTOGRAM
from repro.obs.telemetry import NOOP, Telemetry
from repro.obs.tracer import NOOP_SPAN, Tracer
from repro.service.clock import ManualClock


@pytest.fixture()
def clock():
    return ManualClock(1_000.0)


@pytest.fixture()
def telemetry(clock):
    return Telemetry(clock=clock)


class TestSpans:
    def test_span_duration_is_exact_under_a_manual_clock(
        self, telemetry, clock
    ):
        with telemetry.span("op.query") as span:
            clock.advance(2.5)  # ms
        assert span.duration_us == 2_500.0
        assert telemetry.histogram("span.op.query").count == 1
        assert telemetry.histogram("span.op.query").quantile(
            0.5
        ) == pytest.approx(2_500.0, rel=0.02)

    def test_spans_nest_into_a_tree(self, telemetry, clock):
        with telemetry.span("outer") as outer:
            clock.advance(1.0)
            with telemetry.span("inner") as inner:
                clock.advance(1.0)
            clock.advance(1.0)
        assert outer.children == [inner]
        assert inner.children == []
        assert outer.duration_us == 3_000.0
        assert inner.duration_us == 1_000.0
        tree = outer.to_dict()
        assert tree["name"] == "outer"
        assert tree["children"][0]["name"] == "inner"

    def test_only_root_spans_land_in_recent_roots(self, telemetry, clock):
        with telemetry.span("root"):
            with telemetry.span("child"):
                clock.advance(1.0)
        roots = telemetry.tracer.recent_roots()
        assert [span.name for span in roots] == ["root"]

    def test_recent_roots_ring_is_bounded(self, clock):
        tracer = Tracer(clock, lambda name: NOOP_HISTOGRAM, keep_roots=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                clock.advance(1.0)
        assert [s.name for s in tracer.recent_roots()] == [
            "s7", "s8", "s9",
        ]

    def test_span_stacks_are_per_thread(self, telemetry, clock):
        # A span opened on another thread must not become a child of
        # this thread's active span.
        with telemetry.span("main-root") as root:
            worker_spans = []

            def work():
                with telemetry.span("worker-root") as span:
                    worker_spans.append(span)

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert worker_spans[0] not in root.children
        names = {s.name for s in telemetry.tracer.recent_roots()}
        assert {"main-root", "worker-root"} <= names

    def test_span_closes_even_when_the_body_raises(self, telemetry, clock):
        with pytest.raises(RuntimeError):
            with telemetry.span("fails"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert telemetry.histogram("span.fails").count == 1


class TestTelemetryRegistry:
    def test_instruments_are_cached_by_name(self, telemetry):
        assert telemetry.counter("a") is telemetry.counter("a")
        assert telemetry.gauge("g") is telemetry.gauge("g")
        assert telemetry.histogram("h") is telemetry.histogram("h")

    def test_snapshot_schema(self, telemetry, clock):
        telemetry.counter("reqs").inc(3)
        telemetry.gauge("depth").set(7.0)
        with telemetry.span("op"):
            clock.advance(1.0)
        snap = telemetry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {"reqs": 3}
        assert snap["gauges"] == {"depth": 7.0}
        entry = snap["histograms"]["span.op"]
        assert entry["unit"] == "us"
        assert entry["count"] == 1
        assert entry["p50"] == pytest.approx(1_000.0, rel=0.02)

    def test_empty_histogram_snapshot_has_no_infinities(self, telemetry):
        telemetry.histogram("quiet")
        entry = telemetry.snapshot()["histograms"]["quiet"]
        assert entry == {"unit": "us", "count": 0}


class TestDisabledTelemetry:
    def test_noop_hands_out_shared_noop_instruments(self):
        assert NOOP.enabled is False
        assert NOOP.counter("x") is NOOP_COUNTER
        assert NOOP.gauge("x") is NOOP_GAUGE
        assert NOOP.histogram("x") is NOOP_HISTOGRAM
        assert NOOP.span("x") is NOOP_SPAN
        assert NOOP.tracer is None
        assert NOOP.clock is None

    def test_disabled_snapshot_is_empty(self):
        NOOP.counter("x").inc()
        snap = NOOP.snapshot()
        assert snap == {
            "enabled": False,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_noop_span_is_a_working_context_manager(self):
        with NOOP.span("anything") as span:
            pass
        assert span.duration_us == 0.0

    def test_default_enabled_telemetry_uses_a_monotonic_clock(self):
        from repro.service.clock import MonotonicClock

        telemetry = Telemetry()
        assert isinstance(telemetry.clock, MonotonicClock)
        with telemetry.span("real"):
            pass
        assert telemetry.histogram("span.real").count == 1
