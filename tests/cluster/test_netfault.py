"""Unit tests for the deterministic network-fault injector."""

from __future__ import annotations

import pytest

from repro.cluster import NetworkFaultInjector
from repro.errors import InvalidValueError


class TestRates:
    def test_quiet_injector_passes_everything(self):
        fault = NetworkFaultInjector(seed=1)
        for _ in range(50):
            assert fault.decide("a", "b").action == "ok"

    def test_drop_rate_one_drops_everything(self):
        fault = NetworkFaultInjector(seed=1, drop_rate=1.0)
        for _ in range(20):
            assert fault.decide("a", "b").action == "drop"
        assert fault.stats()["dropped"] == 20

    def test_same_seed_replays_identical_decisions(self):
        make = lambda: NetworkFaultInjector(
            seed=42,
            drop_rate=0.2,
            delay_rate=0.2,
            delay_ms=25.0,
            duplicate_rate=0.2,
        )
        a, b = make(), make()
        decisions_a = [a.decide("x", "y").action for _ in range(200)]
        decisions_b = [b.decide("x", "y").action for _ in range(200)]
        assert decisions_a == decisions_b
        # A fault cocktail at these rates fires every action at least
        # once in 200 draws; if not, the seed plumbing is broken.
        assert {"ok", "drop", "delay", "duplicate"} <= set(decisions_a)

    def test_delay_carries_the_configured_latency(self):
        fault = NetworkFaultInjector(seed=3, delay_rate=1.0, delay_ms=75.0)
        decision = fault.decide("a", "b")
        assert decision.action == "delay"
        assert decision.delay_ms == 75.0

    def test_rates_validated(self):
        with pytest.raises(InvalidValueError):
            NetworkFaultInjector(drop_rate=1.5)
        with pytest.raises(InvalidValueError):
            NetworkFaultInjector(delay_rate=-0.1)


class TestPartitions:
    def test_cross_group_traffic_drops_in_both_directions(self):
        fault = NetworkFaultInjector()
        fault.partition({"n0"}, {"n1", "n2"})
        assert fault.decide("n0", "n1").action == "drop"
        assert fault.decide("n1", "n0").action == "drop"
        assert fault.decide("n1", "n2").action == "ok"

    def test_unlisted_endpoints_are_outside_the_split(self):
        fault = NetworkFaultInjector()
        fault.partition({"n0"}, {"n1"})
        # The supervisor is in no group: it still reaches both sides.
        assert fault.decide("supervisor", "n0").action == "ok"
        assert fault.decide("supervisor", "n1").action == "ok"

    def test_overlapping_groups_rejected(self):
        fault = NetworkFaultInjector()
        with pytest.raises(InvalidValueError):
            fault.partition({"n0", "n1"}, {"n1", "n2"})

    def test_cut_link_is_bidirectional_and_targeted(self):
        fault = NetworkFaultInjector()
        fault.cut_link("n0", "n1")
        assert fault.decide("n0", "n1").action == "drop"
        assert fault.decide("n1", "n0").action == "drop"
        assert fault.decide("n0", "n2").action == "ok"

    def test_heal_restores_traffic_atomically(self):
        fault = NetworkFaultInjector()
        fault.partition({"n0"}, {"n1"})
        fault.cut_link("n1", "n2")
        fault.heal()
        for src, dst in [("n0", "n1"), ("n1", "n2")]:
            assert fault.decide(src, dst).action == "ok"
