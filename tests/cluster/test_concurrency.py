"""Runtime sanitizer coverage for the cluster's new locks.

Builds the whole cluster *inside* the test body so every
``threading.Lock`` it creates — node state locks, transport address
locks, supervisor/proxy view locks, fault-injector RNG lock — is
wrapped by the :mod:`repro.sanitizer` monitor; teardown fails on any
lock-order cycle observed across the concurrent client threads, tick
loops and server handler threads.
"""

from __future__ import annotations

import threading

from repro.cluster import LocalCluster


def test_concurrent_cluster_traffic_is_lock_clean(lock_sanitizer):
    with LocalCluster(n_nodes=2) as cluster:
        errors: list[BaseException] = []

        def writer(tag: str) -> None:
            try:
                with cluster.client(retries=2) as client:
                    for batch in range(10):
                        client.ingest(
                            "conc", [float(batch)] * 5, tags={"w": tag}
                        )
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(str(i),), name=f"w{i}")
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors, errors
        cluster.run_for(2_000.0)
        with cluster.client(retries=2) as client:
            assert client.count("conc", tags={"w": "0"}) == 50
        assert cluster.converged()


def test_supervisor_and_runners_interleave_cleanly(lock_sanitizer):
    with LocalCluster(n_nodes=3) as cluster:
        with cluster.client() as client:
            client.ingest("m", [float(v) for v in range(50)])
        # Drive every periodic loop repeatedly; the sanitizer watches
        # the node/state, transport and supervisor locks interleave.
        cluster.run_for(4_000.0, step_ms=100.0)
        leader = cluster.leader_of("m")
        cluster.crash(leader)
        cluster.run_for(3_000.0, step_ms=250.0)
        cluster.restart(leader)
        cluster.run_for(4_000.0, step_ms=250.0)
        assert cluster.converged()
