"""Leader failover: detection, promotion, catch-up, staleness bounds."""

from __future__ import annotations

from repro.cluster import LocalCluster
from repro.service.client import QuantileClient


def direct_client(cluster, node_id):
    host, port = cluster.node(node_id).address
    return QuantileClient(host, port, clock=cluster.clock, retries=0)


class TestFailover:
    def test_leader_death_is_detected_and_a_follower_promoted(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(1_000.0)
            old_leader = cluster.leader_of("m")
            cluster.crash(old_leader)
            cluster.run_for(3_000.0, step_ms=250.0)
            view = cluster.supervisor.view
            assert not view.is_alive(old_leader)
            new_leader = cluster.leader_of("m")
            assert new_leader is not None
            assert new_leader != old_leader

    def test_new_leader_accepts_writes_and_serves_merged_reads(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(1_000.0)
            old_leader = cluster.leader_of("m")
            cluster.crash(old_leader)
            cluster.run_for(3_000.0, step_ms=250.0)
            with cluster.client() as client:
                assert client.ingest("m", [1_000.0] * 50) == 50
                # The key's history now spans two origins; the read
                # must merge the old leader's replicated records with
                # the new leader's own.
                assert client.count("m") == 150
                assert client.quantile("m", 0.99) == 1_000.0

    def test_no_acked_write_is_lost_across_crash_and_recovery(self):
        with LocalCluster(n_nodes=3) as cluster:
            acked = 0
            with cluster.client() as client:
                acked += client.ingest("m", [float(v) for v in range(60)])
            cluster.run_for(1_000.0)
            old_leader = cluster.leader_of("m")
            cluster.crash(old_leader)
            cluster.run_for(3_000.0, step_ms=250.0)
            with cluster.client() as client:
                acked += client.ingest("m", [float(v) for v in range(40)])
            cluster.restart(old_leader)
            cluster.run_for(5_000.0, step_ms=250.0)
            assert cluster.converged()
            # Every replica answers with every acked record — the
            # crashed leader recovered its acked suffix from its WAL.
            for node_id in cluster.running_nodes():
                with direct_client(cluster, node_id) as direct:
                    assert direct.count("m") == acked

    def test_recovered_leader_reclaims_its_keys(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [1.0, 2.0])
            cluster.run_for(1_000.0)
            old_leader = cluster.leader_of("m")
            cluster.crash(old_leader)
            cluster.run_for(3_000.0, step_ms=250.0)
            assert cluster.leader_of("m") != old_leader
            cluster.restart(old_leader)
            cluster.run_for(3_000.0, step_ms=250.0)
            # Leadership is positional: the resurrected primary leads
            # again as soon as the view marks it alive.
            assert cluster.leader_of("m") == old_leader


class TestStalenessBound:
    def test_fresh_follower_serves_preferred_reads(self):
        with LocalCluster(n_nodes=3, prefer_followers=True) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(2_000.0)
            leader = cluster.leader_of("m")
            before = {
                node_id: cluster.node(node_id).stats.snapshot().get(
                    "query_requests", 0
                )
                for node_id in cluster.running_nodes()
            }
            with cluster.client() as client:
                assert client.count("m") == 100
            after = {
                node_id: cluster.node(node_id).stats.snapshot().get(
                    "query_requests", 0
                )
                for node_id in cluster.running_nodes()
            }
            served = [n for n in after if after[n] > before[n]]
            assert served and all(n != leader for n in served)

    def test_stale_view_forces_leader_reads(self):
        with LocalCluster(n_nodes=3, prefer_followers=True) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(2_000.0)
            leader = cluster.leader_of("m")
            # Let the view age past the staleness bound without a
            # heartbeat: follower evidence is now too old to trust.
            cluster.clock.advance(10_000.0)
            before = cluster.node(leader).stats.snapshot().get(
                "query_requests", 0
            )
            with cluster.client() as client:
                assert client.count("m") == 100
            after = cluster.node(leader).stats.snapshot().get(
                "query_requests", 0
            )
            assert after == before + 1
            assert (
                cluster.telemetry.counter("proxy.stale_view_reads").value
                > 0
            )

    def test_lagging_follower_is_ineligible(self):
        with LocalCluster(
            n_nodes=3, prefer_followers=True, repl_interval_ms=200.0
        ) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(2_000.0)
            leader = cluster.leader_of("m")
            # New records the followers have not pulled yet, then a
            # heartbeat that records their lag — but no replication
            # tick, so the lag persists in the view.
            with cluster.client() as client:
                client.ingest("m", [200.0] * 10)
            cluster.supervisor.heartbeat()
            before = cluster.node(leader).stats.snapshot().get(
                "query_requests", 0
            )
            with cluster.client() as client:
                assert client.count("m") == 110
            after = cluster.node(leader).stats.snapshot().get(
                "query_requests", 0
            )
            # max_lag_records=0: every follower trails the origin, so
            # only the leader may answer.
            assert after == before + 1
