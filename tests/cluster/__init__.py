"""Tests for the replicated cluster subsystem."""
