"""Partition-tolerance suite: the acceptance scenarios for the cluster.

Every scenario runs on a :class:`~repro.service.clock.ManualClock`
with a seeded :class:`~repro.cluster.netfault.NetworkFaultInjector`,
and ends with the strongest convergence check available: every replica
of every ``(origin, tenant)`` store byte-identical across the nodes
that should hold it.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster, NetworkFaultInjector

VALUES = [float(v) for v in range(100)]


class TestHealedPartition:
    def test_replicas_converge_after_a_healed_partition(self):
        fault = NetworkFaultInjector(seed=7)
        with LocalCluster(n_nodes=3, fault=fault) as cluster:
            with cluster.client() as client:
                client.ingest("m", VALUES)
            cluster.run_for(1_000.0)
            leader = cluster.leader_of("m")
            others = [n for n in cluster.node_ids if n != leader]
            # Split the data plane: the leader alone on one side.  The
            # proxy and supervisor are unlisted, so writes still reach
            # the leader while replication to the others is cut.
            fault.partition({leader}, set(others))
            cluster.run_for(2_000.0)
            with cluster.client() as client:
                client.ingest("m", [500.0] * 30)
            cluster.run_for(2_000.0)
            behind = [
                n
                for n in others
                if cluster.node(n).applied_watermark(leader)
                < cluster.node(leader).wal_watermark()
            ]
            assert behind, "partition should have stalled replication"
            fault.heal()
            cluster.run_for(5_000.0)
            assert cluster.converged()
            for node_id in cluster.node_ids:
                node = cluster.node(node_id)
                if node_id != leader:
                    assert node.applied_watermark(
                        leader
                    ) == cluster.node(leader).wal_watermark()

    def test_minority_leader_cedes_to_the_majority_side(self):
        fault = NetworkFaultInjector(seed=11)
        with LocalCluster(n_nodes=3, fault=fault) as cluster:
            with cluster.client() as client:
                client.ingest("m", VALUES)
            cluster.run_for(1_000.0)
            leader = cluster.leader_of("m")
            others = [n for n in cluster.node_ids if n != leader]
            # This time the supervisor is partitioned away from the
            # leader too: the cluster must fail over.
            fault.partition({leader}, set(others) | {"supervisor", "proxy"})
            cluster.run_for(3_000.0, step_ms=250.0)
            assert not cluster.supervisor.view.is_alive(leader)
            new_leader = cluster.leader_of("m")
            assert new_leader in others
            with cluster.client() as client:
                assert client.ingest("m", [900.0] * 20) == 20
            fault.heal()
            cluster.run_for(6_000.0, step_ms=250.0)
            assert cluster.converged()
            with cluster.client() as client:
                assert client.count("m") == len(VALUES) + 20


def ingest_until_acked(cluster, client, metric, values, attempts=20):
    """Retry through proxy-level 'unavailable' answers (dropped
    forwards raise as application errors, which clients do not retry);
    a dropped forward never reached the node, so retrying is safe."""
    from repro.errors import ServiceError

    for _attempt in range(attempts):
        try:
            return client.ingest(metric, values)
        except ServiceError:
            cluster.tick(advance_ms=100.0)
    raise AssertionError(f"ingest not acked after {attempts} attempts")


class TestLossyNetwork:
    @pytest.mark.parametrize("seed", [3, 23, 2023])
    def test_convergence_through_drops_delays_and_duplicates(self, seed):
        fault = NetworkFaultInjector(
            seed=seed,
            drop_rate=0.10,
            delay_rate=0.15,
            delay_ms=20.0,
            duplicate_rate=0.10,
        )
        with LocalCluster(n_nodes=3, fault=fault) as cluster:
            acked = 0
            with cluster.client(retries=8) as client:
                for batch in range(5):
                    acked += ingest_until_acked(
                        cluster, client, "m", VALUES
                    )
                    cluster.tick(advance_ms=200.0)
            cluster.run_for(8_000.0, step_ms=250.0)
            assert cluster.converged()
            assert fault.stats()["dropped"] > 0
            with cluster.client(retries=8) as client:
                # At-least-once under duplication: nothing acked may be
                # lost, though duplicated forwards can double-apply.
                assert client.count("m") >= acked == 5 * len(VALUES)


class TestCrashRecovery:
    def test_single_node_crash_heals_to_bit_identical_digests(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", VALUES, tags={"host": "a"})
                client.ingest("m", VALUES, tags={"host": "b"})
            cluster.run_for(1_000.0)
            victim = cluster.leader_of("m", {"host": "a"})
            cluster.crash(victim)
            cluster.run_for(3_000.0, step_ms=250.0)
            with cluster.client() as client:
                client.ingest("m", [777.0] * 10, tags={"host": "a"})
            cluster.restart(victim)
            cluster.run_for(5_000.0, step_ms=250.0)
            report = cluster.convergence_report()
            assert report["converged"], report["mismatches"]
            # Byte-identical snapshots imply identical digests; check
            # the digests directly for one replicated store as well.
            reference = None
            for node_id in cluster.running_nodes():
                state = cluster.node(node_id).partition_digests_for(
                    victim, "m", {"host": "a"}
                )
                if state is None:
                    continue
                if reference is None:
                    reference = state
                assert state == reference

    def test_crash_during_partition_then_heal(self):
        fault = NetworkFaultInjector(seed=5)
        with LocalCluster(n_nodes=3, fault=fault) as cluster:
            with cluster.client() as client:
                client.ingest("m", VALUES)
            cluster.run_for(1_000.0)
            leader = cluster.leader_of("m")
            others = [n for n in cluster.node_ids if n != leader]
            fault.partition({others[0]}, {leader, others[1]})
            cluster.run_for(2_000.0)
            cluster.crash(others[1])
            cluster.run_for(3_000.0, step_ms=250.0)
            fault.heal()
            cluster.restart(others[1])
            cluster.run_for(6_000.0, step_ms=250.0)
            assert cluster.converged()
