"""WAL-streaming replication: pulls, cursors, idempotency, fallback."""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster
from repro.errors import InvalidValueError, ServiceError
from repro.service.client import QuantileClient


def direct_client(cluster, node_id):
    host, port = cluster.node(node_id).address
    return QuantileClient(host, port, clock=cluster.clock, retries=0)


def origin_watermark(cluster, origin):
    return cluster.node(origin).wal_watermark()


def followers_of(cluster, origin):
    return [n for n in cluster.running_nodes() if n != origin]


class TestWalStreaming:
    def test_followers_apply_the_leader_wal(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(1_000.0)
            leader = cluster.leader_of("m")
            assert origin_watermark(cluster, leader) == 1
            for follower in followers_of(cluster, leader):
                node = cluster.node(follower)
                assert node.applied_watermark(leader) == 1

    def test_replicated_reads_match_the_leader(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(200)])
            cluster.run_for(1_000.0)
            leader = cluster.leader_of("m")
            reference = None
            for node_id in cluster.running_nodes():
                with direct_client(cluster, node_id) as direct:
                    assert direct.count("m") == 200
                    p50 = direct.quantile("m", 0.5)
                if reference is None:
                    reference = p50
                # Identical replica state answers identically, on the
                # leader and on every follower.
                assert p50 == reference
            assert leader in cluster.running_nodes()

    def test_duplicate_delivery_is_idempotent(self):
        with LocalCluster(n_nodes=2) as cluster:
            follower = cluster.node_ids[1]
            origin = cluster.node_ids[0]
            node = cluster.node(follower)
            records = [
                [
                    1,
                    {
                        "metric": "dup",
                        "values": [1.0, 2.0, 3.0],
                        "ts": 1_000_000.0,
                        "tags": None,
                        "now": 1_000_000.0,
                    },
                ]
            ]
            assert node.apply_replicated(origin, records, upto=1) == 1
            assert node.apply_replicated(origin, records, upto=1) == 0
            assert node.applied_watermark(origin) == 1

    def test_a_node_never_replicates_from_itself(self):
        with LocalCluster(n_nodes=2) as cluster:
            node = cluster.node("n0")
            with pytest.raises(InvalidValueError):
                node.apply_replicated("n0", [], upto=1)


class TestReplPullOp:
    def test_pull_returns_records_and_cursor(self):
        with LocalCluster(n_nodes=2) as cluster:
            with cluster.client() as client:
                client.ingest("m", [1.0, 2.0])
                client.ingest("m", [3.0])
            leader = cluster.leader_of("m")
            with direct_client(cluster, leader) as direct:
                response = direct.call(
                    {"op": "repl_pull", "after": 0, "max_records": 10}
                )
            assert response["snapshot_needed"] is False
            assert response["upto"] == 2
            assert [seq for seq, _record in response["records"]] == [1, 2]
            record = response["records"][0][1]
            assert record["metric"] == "m"
            assert record["values"] == [1.0, 2.0]

    def test_pull_behind_a_checkpoint_demands_a_snapshot(self):
        with LocalCluster(n_nodes=2) as cluster:
            with cluster.client() as client:
                client.ingest("m", [1.0, 2.0])
                client.checkpoint()
            leader = cluster.leader_of("m")
            with direct_client(cluster, leader) as direct:
                response = direct.call({"op": "repl_pull", "after": 0})
            assert response["snapshot_needed"] is True
            assert response["records"] == []

    def test_pull_validates_cursor_and_limit(self):
        with LocalCluster(n_nodes=2) as cluster:
            with direct_client(cluster, "n0") as direct:
                with pytest.raises(ServiceError):
                    direct.call({"op": "repl_pull", "after": -1})
                with pytest.raises(ServiceError):
                    direct.call(
                        {"op": "repl_pull", "after": 0, "max_records": 0}
                    )

    def test_partial_replication_filters_keys_but_advances_cursor(self):
        with LocalCluster(n_nodes=3, replication_factor=1) as cluster:
            with cluster.client() as client:
                client.ingest("solo", [1.0, 2.0, 3.0])
            leader = cluster.leader_of("solo")
            other = [n for n in cluster.node_ids if n != leader][0]
            with direct_client(cluster, leader) as direct:
                response = direct.call(
                    {"op": "repl_pull", "after": 0, "peer": other}
                )
            # R=1: no other node replicates the key, so the peer gets
            # no records — but the cursor still advances past them.
            assert response["records"] == []
            assert response["upto"] == 1


class TestCatchUp:
    def test_checkpoint_truncation_falls_back_to_anti_entropy(self):
        with LocalCluster(n_nodes=2) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(50)])
                # Truncate every WAL before any replication tick ran:
                # followers must now adopt partitions, not tail.
                client.checkpoint()
            cluster.run_for(3_000.0)
            leader = cluster.leader_of("m")
            follower = followers_of(cluster, leader)[0]
            node = cluster.node(follower)
            assert node.applied_watermark(leader) == origin_watermark(
                cluster, leader
            )
            assert cluster.converged()
            adopted = cluster.telemetry.counter(
                "cluster.ae_partitions_adopted"
            ).value
            assert adopted > 0

    def test_restarted_follower_catches_up(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.run_for(1_000.0)
            leader = cluster.leader_of("m")
            follower = followers_of(cluster, leader)[0]
            cluster.crash(follower)
            cluster.run_for(2_000.0)
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(100)])
            cluster.restart(follower)
            cluster.run_for(3_000.0)
            assert cluster.node(follower).applied_watermark(
                leader
            ) == origin_watermark(cluster, leader)
            assert cluster.converged()
