"""Gossip anti-entropy: frontier diffs, symmetric-difference adoption."""

from __future__ import annotations

from repro.cluster import ClusterTransport, LocalCluster
from repro.cluster.antientropy import _diff_items, reconcile_with_peer


def peer_transport(cluster, local_id, *peers):
    transport = ClusterTransport(
        local_id, clock=cluster.clock, fault=cluster.fault
    )
    for peer in peers:
        host, port = cluster.node(peer).address
        transport.set_address(peer, host, port)
    return transport


class TestReconcile:
    def test_follower_adopts_the_origin_wholesale(self):
        with LocalCluster(n_nodes=2) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(80)])
            leader = cluster.leader_of("m")
            follower = [n for n in cluster.node_ids if n != leader][0]
            transport = peer_transport(cluster, follower, leader)
            adopted = reconcile_with_peer(
                cluster.node(follower), transport, leader
            )
            assert adopted > 0
            node = cluster.node(follower)
            # The cursor jumped to the origin's frontier-time mark, so
            # the replication plane will not refetch adopted records.
            assert node.applied_watermark(leader) == cluster.node(
                leader
            ).wal_watermark()
            assert cluster.converged()
            transport.close()

    def test_second_round_ships_nothing(self):
        with LocalCluster(n_nodes=2) as cluster:
            with cluster.client() as client:
                client.ingest("m", [float(v) for v in range(80)])
            leader = cluster.leader_of("m")
            follower = [n for n in cluster.node_ids if n != leader][0]
            transport = peer_transport(cluster, follower, leader)
            node = cluster.node(follower)
            assert reconcile_with_peer(node, transport, leader) > 0
            # Equal watermarks imply equal digests: the whole origin is
            # skipped before any digest comparison happens.
            assert reconcile_with_peer(node, transport, leader) == 0
            transport.close()

    def test_runner_round_robins_and_counts_rounds(self):
        with LocalCluster(n_nodes=3) as cluster:
            with cluster.client() as client:
                client.ingest("m", [1.0, 2.0, 3.0])
            cluster.run_for(4_000.0)
            rounds = cluster.telemetry.counter("cluster.ae_rounds").value
            assert rounds >= 3
            assert cluster.converged()


class _StubNode:
    """Just enough node surface for :func:`_diff_items`."""

    node_id = "me"
    replication_factor = None

    def __init__(self, stores):
        self._stores = stores

    def replicates(self, node_id, key):
        return True

    def partition_digests_for(self, origin, metric, tags):
        return self._stores.get(metric)


class TestDiffItems:
    ENTRY = {
        "metric": "m",
        "tags": None,
        "digests": {"f:1": "aa", "f:2": "bb"},
        "counters": {"events_recorded": 2, "dropped_late": 0},
    }

    def test_missing_store_requests_every_partition(self):
        items = _diff_items(_StubNode({}), "n0", [self.ENTRY])
        assert items == [
            {"metric": "m", "tags": None, "keys": ["f:1", "f:2"]}
        ]

    def test_identical_state_requests_nothing(self):
        node = _StubNode(
            {"m": ({"f:1": "aa", "f:2": "bb"}, dict(self.ENTRY["counters"]))}
        )
        assert _diff_items(node, "n0", [self.ENTRY]) == []

    def test_only_diverged_partitions_are_requested(self):
        node = _StubNode(
            {"m": ({"f:1": "aa", "f:2": "XX"}, dict(self.ENTRY["counters"]))}
        )
        items = _diff_items(node, "n0", [self.ENTRY])
        assert items == [{"metric": "m", "tags": None, "keys": ["f:2"]}]

    def test_counter_drift_without_digest_change_is_detected(self):
        # Late drops and compaction markers mutate no partition, so the
        # digests match — the counters alone must trigger the fetch.
        node = _StubNode(
            {
                "m": (
                    {"f:1": "aa", "f:2": "bb"},
                    {"events_recorded": 2, "dropped_late": 7},
                )
            }
        )
        items = _diff_items(node, "n0", [self.ENTRY])
        assert items == [{"metric": "m", "tags": None, "keys": []}]

    def test_local_extra_partitions_trigger_a_fetch(self):
        # The peer expired f:9; fetching with an empty diverged list
        # still delivers the authoritative key set that drops it.
        node = _StubNode(
            {
                "m": (
                    {"f:1": "aa", "f:2": "bb", "f:9": "zz"},
                    dict(self.ENTRY["counters"]),
                )
            }
        )
        items = _diff_items(node, "n0", [self.ENTRY])
        assert items == [{"metric": "m", "tags": None, "keys": []}]
