"""Unit tests for the deterministic consistent-hash ring."""

from __future__ import annotations

import pytest

from repro.cluster import HashRing
from repro.errors import InvalidValueError

NODES = ["n0", "n1", "n2"]
KEYS = [f"metric.{index}|host=h{index % 7}" for index in range(200)]


class TestConstruction:
    def test_rejects_empty_node_list(self):
        with pytest.raises(InvalidValueError):
            HashRing([])

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(InvalidValueError):
            HashRing(["a", "b", "a"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(InvalidValueError):
            HashRing(NODES, vnodes=0)

    def test_membership_and_len(self):
        ring = HashRing(NODES)
        assert len(ring) == 3
        assert "n1" in ring
        assert "n9" not in ring


class TestPlacement:
    def test_deterministic_across_instances(self):
        a, b = HashRing(NODES), HashRing(list(reversed(NODES)))
        for key in KEYS:
            assert a.owners(key) == b.owners(key)

    def test_owners_are_distinct_and_primary_first(self):
        ring = HashRing(NODES)
        for key in KEYS:
            owners = ring.owners(key, 2)
            assert len(owners) == len(set(owners)) == 2
            assert owners[0] == ring.primary(key)

    def test_owners_none_returns_every_node(self):
        ring = HashRing(NODES)
        for key in KEYS[:20]:
            assert sorted(ring.owners(key)) == sorted(NODES)

    def test_is_owner_matches_owner_list(self):
        ring = HashRing(NODES)
        for key in KEYS[:50]:
            owners = ring.owners(key, 2)
            for node in NODES:
                assert ring.is_owner(key, node, 2) == (node in owners)

    def test_every_node_gets_some_keys(self):
        ring = HashRing(NODES)
        primaries = {ring.primary(key) for key in KEYS}
        assert primaries == set(NODES)

    def test_adding_a_node_moves_only_a_fraction_of_keys(self):
        before = HashRing(NODES)
        after = HashRing(NODES + ["n3"])
        moved = sum(
            1
            for key in KEYS
            if before.primary(key) != after.primary(key)
        )
        # Consistent hashing: ~1/4 of keys should move to the new
        # node; a modulo scheme would reshuffle nearly all of them.
        assert moved < len(KEYS) // 2
        # Keys that moved must have moved *to* the new node.
        for key in KEYS:
            if before.primary(key) != after.primary(key):
                assert after.primary(key) == "n3"
