"""Unit tests for membership views and view-derived leadership."""

from __future__ import annotations

import pytest

from repro.cluster import HashRing, MembershipView, NodeStatus
from repro.cluster.membership import EMPTY_VIEW
from repro.errors import InvalidValueError


def make_view(alive: dict[str, bool], epoch: int = 1) -> MembershipView:
    return MembershipView(
        epoch=epoch,
        nodes={
            node_id: NodeStatus(
                node_id=node_id,
                address=("127.0.0.1", 9000 + index),
                alive=up,
                wal_watermark=10 * index,
                frontier={"n0": index},
            )
            for index, (node_id, up) in enumerate(sorted(alive.items()))
        },
    )


class TestStatusQueries:
    def test_is_alive_requires_a_known_alive_node(self):
        view = make_view({"n0": True, "n1": False})
        assert view.is_alive("n0")
        assert not view.is_alive("n1")
        assert not view.is_alive("n9")  # unknown -> not alive

    def test_presumed_alive_is_optimistic_about_unknowns(self):
        view = make_view({"n0": True, "n1": False})
        assert view.presumed_alive("n0")
        assert not view.presumed_alive("n1")
        assert view.presumed_alive("n9")  # unknown -> presumed up
        # Before the first push everything is presumed alive.
        assert EMPTY_VIEW.presumed_alive("anything")

    def test_alive_nodes_sorted(self):
        view = make_view({"n2": True, "n0": True, "n1": False})
        assert view.alive_nodes() == ["n0", "n2"]

    def test_address_lookup(self):
        view = make_view({"n0": True})
        assert view.address("n0") == ("127.0.0.1", 9000)
        assert view.address("n9") is None


class TestLeadership:
    def test_leader_is_first_alive_owner_in_ring_order(self):
        ring = HashRing(["n0", "n1", "n2"])
        key = "latency.api|region=eu"
        owners = ring.owners(key)
        all_up = make_view({node: True for node in owners})
        assert all_up.leader(ring, key) == owners[0]
        primary_down = make_view(
            {node: node != owners[0] for node in owners}
        )
        assert primary_down.leader(ring, key) == owners[1]

    def test_leader_none_when_every_owner_is_down(self):
        ring = HashRing(["n0", "n1"])
        view = make_view({"n0": False, "n1": False})
        assert view.leader(ring, "k") is None

    def test_replication_factor_bounds_the_candidate_set(self):
        ring = HashRing(["n0", "n1", "n2"])
        key = "k"
        owners = ring.owners(key)
        # Only the last owner is up, but it is outside the replica set.
        view = make_view(
            {node: node == owners[2] for node in owners}
        )
        assert view.leader(ring, key, replicas=2) is None
        assert view.leader(ring, key) == owners[2]


class TestWireFormat:
    def test_view_round_trips(self):
        view = make_view({"n0": True, "n1": False}, epoch=7)
        decoded = MembershipView.from_wire(view.as_wire())
        assert decoded.epoch == 7
        assert set(decoded.nodes) == {"n0", "n1"}
        for node_id in decoded.nodes:
            got, want = decoded.nodes[node_id], view.nodes[node_id]
            assert got.address == want.address
            assert got.alive == want.alive
            assert got.wal_watermark == want.wal_watermark
            assert dict(got.frontier) == dict(want.frontier)

    def test_from_wire_rejects_bad_epoch(self):
        with pytest.raises(InvalidValueError):
            MembershipView.from_wire({"epoch": -1, "nodes": {}})
        with pytest.raises(InvalidValueError):
            MembershipView.from_wire({"epoch": "seven", "nodes": {}})

    def test_from_wire_rejects_missing_nodes(self):
        with pytest.raises(InvalidValueError):
            MembershipView.from_wire({"epoch": 1})
