"""Every example script must run clean end to end.

The examples are part of the public deliverable; this test executes
each one in a subprocess (so module-level scripts, ``__main__`` guards
and prints all behave exactly as for a user) and checks for a zero
exit and the expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script -> a fragment its stdout must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "restored: OK",
    "web_latency_monitoring.py": "ALERT: p99 degraded",
    "distributed_quantiles.py": "saves",
    "late_data_pipeline.py": "allowed lateness recovered",
    "sketch_comparison.py": "uddsketch",
    "turnstile_deletions.py": "different question",
    "reproducible_replay.py": "conformance: OK",
    "quantile_service_demo.py": "query latency over 300 TCP round-trips",
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in completed.stdout
