"""End-to-end pipeline integration tests."""

import numpy as np
import pytest

from repro.core import DDSketch, UDDSketch, dumps, loads, paper_config
from repro.data import (
    ACCURACY_DATASETS,
    DriftingPareto,
    NYTFares,
    generate_stream,
)
from repro.metrics import PAPER_QUANTILES, relative_error, true_quantile
from repro.streaming import (
    SketchAggregator,
    StreamEnvironment,
    TumblingEventTimeWindows,
    run_tumbling_batch,
    window_values,
)


class TestFullPipelinePerDataset:
    @pytest.mark.parametrize("dataset", sorted(ACCURACY_DATASETS))
    def test_windowed_quantiles_on_every_dataset(self, dataset, rng):
        distribution = ACCURACY_DATASETS[dataset]()
        batch = generate_stream(
            distribution, 5_000.0, rng, rate_per_sec=2_000
        )
        aggregator = SketchAggregator(
            lambda: paper_config("ddsketch", dataset=dataset),
            PAPER_QUANTILES,
        )
        report = run_tumbling_batch(batch, 1_000.0, aggregator)
        truth = window_values(batch, 1_000.0)
        assert len(report.results) == 5
        for result in report.results:
            true_sorted = truth[result.window]
            for q in PAPER_QUANTILES:
                est = result.result[q]
                true = true_quantile(true_sorted, q)
                assert relative_error(true, est) <= 0.011, (dataset, q)

    @pytest.mark.parametrize(
        "sketch_name", ["kll", "moments", "ddsketch", "uddsketch", "req"]
    )
    def test_every_sketch_through_the_engine(self, sketch_name, rng):
        batch = generate_stream(
            NYTFares(), 3_000.0, rng, rate_per_sec=2_000
        )
        aggregator = SketchAggregator(
            lambda: paper_config(sketch_name, dataset="nyt", seed=1),
            (0.5, 0.99),
        )
        report = run_tumbling_batch(batch, 1_000.0, aggregator)
        assert len(report.results) == 3
        for result in report.results:
            assert result.result[0.5] <= result.result[0.99]


class TestDistributedRoundTrip:
    def test_sketch_ship_merge_query(self, rng):
        # Partition -> sketch -> serialize -> ship -> merge -> query.
        partitions = [
            DriftingPareto().sample(20_000, rng) for _ in range(8)
        ]
        payloads = []
        for part in partitions:
            sketch = UDDSketch()
            sketch.update_batch(part)
            payloads.append(dumps(sketch))
        merged = loads(payloads[0])
        for payload in payloads[1:]:
            merged.merge(loads(payload))
        all_data = np.sort(np.concatenate(partitions))
        assert merged.count == all_data.size
        for q in (0.5, 0.9, 0.99):
            true = true_quantile(all_data, q)
            assert relative_error(true, merged.quantile(q)) <= (
                merged.current_guarantee + 1e-9
            )


class TestLateDataAccounting:
    def test_loss_rate_with_paper_delay_model(self, rng):
        # Sec 4.6: exponential delay (mean 150 ms) against 20 s windows
        # loses a small percentage of events; with the smoke-scale 2 s
        # windows the boundary effect is ~7x larger but still small.
        batch = generate_stream(
            DriftingPareto(), 20_000.0, rng,
            rate_per_sec=2_000, delay_mean_ms=150.0,
        )
        report = run_tumbling_batch(
            batch, 2_000.0, SketchAggregator(DDSketch, (0.5,))
        )
        assert 0.0 < report.loss_fraction < 0.2

    def test_kept_plus_dropped_equals_total(self, rng):
        batch = generate_stream(
            DriftingPareto(), 5_000.0, rng,
            rate_per_sec=1_000, delay_mean_ms=300.0,
        )
        report = run_tumbling_batch(
            batch, 1_000.0, SketchAggregator(DDSketch, (0.5,))
        )
        kept = sum(r.event_count for r in report.results)
        assert kept + report.dropped_late == report.total_events


class TestKeyedPipeline:
    def test_per_key_quantiles(self, rng):
        batch = generate_stream(
            NYTFares(), 2_000.0, rng, rate_per_sec=1_000
        )
        env = StreamEnvironment()
        report = (
            env.from_batch(batch)
            .key_by(lambda e: int(e.event_time) % 2)
            .window(TumblingEventTimeWindows(1_000.0))
            .aggregate(SketchAggregator(DDSketch, (0.5,)))
        )
        keys = {r.key for r in report.results}
        assert keys == {0, 1}
        assert sum(r.event_count for r in report.results) == 2_000
