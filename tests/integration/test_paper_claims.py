"""Integration tests asserting the paper's qualitative findings.

Each test pins one claim from the evaluation (Sec 4) at reduced scale:
who wins, who fails, and where — the *shape* of the published results.
"""

import numpy as np
import pytest

from repro.core import paper_config
from repro.data import (
    DriftingPareto,
    DriftingUniform,
    NYTFares,
    PowerConsumption,
    adaptability_workload,
)
from repro.metrics import relative_error, true_quantile

N = 200_000
SKETCHES = ("kll", "moments", "ddsketch", "uddsketch", "req")


def errors_on(dataset_name, values, quantiles, seed=0):
    true_sorted = np.sort(values)
    out = {}
    for name in SKETCHES:
        sketch = paper_config(name, dataset=dataset_name, seed=seed)
        sketch.update_batch(values)
        out[name] = {
            q: relative_error(
                true_quantile(true_sorted, q), sketch.quantile(q)
            )
            for q in quantiles
        }
    return out


@pytest.fixture(scope="module")
def pareto_errors():
    rng = np.random.default_rng(1)
    values = DriftingPareto().sample(N, rng)
    return errors_on("pareto", values, (0.5, 0.95, 0.98, 0.99))


@pytest.fixture(scope="module")
def uniform_errors():
    rng = np.random.default_rng(2)
    values = DriftingUniform().sample(N, rng)
    return errors_on(
        "uniform", values, (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99)
    )


@pytest.fixture(scope="module")
def nyt_errors():
    rng = np.random.default_rng(3)
    values = NYTFares().sample(N, rng)
    return errors_on("nyt", values, (0.25, 0.5, 0.95, 0.98, 0.99))


@pytest.fixture(scope="module")
def power_errors():
    rng = np.random.default_rng(4)
    values = PowerConsumption().sample(N, rng)
    return errors_on("power", values, (0.25, 0.5, 0.75, 0.95, 0.99))


class TestFig6aPareto:
    def test_kll_tail_error_blows_up(self, pareto_errors):
        # Sec 4.5.1: KLL's 0.99 estimate has large relative error on
        # the scattered Pareto tail while DDSketch stays within alpha.
        assert pareto_errors["kll"][0.99] > 0.02
        assert pareto_errors["kll"][0.99] > (
            5 * pareto_errors["ddsketch"][0.99]
        )

    def test_relative_error_sketches_hold_the_line(self, pareto_errors):
        for name in ("ddsketch", "uddsketch"):
            for q, err in pareto_errors[name].items():
                assert err <= 0.0101, (name, q)

    def test_req_hra_accurate_at_tail(self, pareto_errors):
        assert pareto_errors["req"][0.98] < 0.01
        assert pareto_errors["req"][0.99] < 0.01

    def test_moments_ok_on_synthetic(self, pareto_errors):
        # Sec 4.5.1: Moments approximates sampled distributions well.
        assert pareto_errors["moments"][0.5] < 0.05


class TestFig6bUniform:
    def test_everyone_below_threshold(self, uniform_errors):
        # Sec 4.5.2: "all five algorithms perform very well against
        # uniformly varying data".
        for name, errors in uniform_errors.items():
            for q, err in errors.items():
                assert err < 0.011, (name, q)

    def test_req_extreme_upper_accuracy(self, uniform_errors):
        assert uniform_errors["req"][0.99] < 0.001


class TestFig6cNYT:
    def test_sampling_sketches_exact_at_repeated_quartile(self, nyt_errors):
        # Sec 4.5.3: the 0.25 quantile is a value repeated >200k times,
        # so KLL/REQ keep it exactly.
        assert nyt_errors["kll"][0.25] == 0.0
        assert nyt_errors["req"][0.25] == 0.0

    def test_moments_struggles_on_real_world(self, nyt_errors):
        # Sec 4.5.5: Moments exceeds the 1% threshold on real data.
        worst_moments = max(nyt_errors["moments"].values())
        assert worst_moments > 0.01

    def test_udd_and_dd_meet_guarantee(self, nyt_errors):
        for name in ("ddsketch", "uddsketch"):
            assert max(nyt_errors[name].values()) <= 0.0101


class TestFig6dPower:
    def test_moments_mid_quantile_error_is_its_worst(self, power_errors):
        # Sec 4.5.4: the mid quantiles fall between the humps of the
        # bimodal PDF, where the max-entropy fit is worst.
        moments = power_errors["moments"]
        mid = max(moments[0.25], moments[0.5], moments[0.75])
        assert mid > moments[0.99]

    def test_dd_udd_excel(self, power_errors):
        for name in ("ddsketch", "uddsketch"):
            assert max(power_errors[name].values()) <= 0.0101

    def test_req_best_at_tail(self, power_errors):
        tail_errors = {
            name: errors[0.99] for name, errors in power_errors.items()
        }
        assert tail_errors["req"] == min(tail_errors.values())


class TestFig8Adaptability:
    @pytest.fixture(scope="class")
    def shift_errors(self):
        rng = np.random.default_rng(5)
        half = 100_000
        values = adaptability_workload(half, half).sample(2 * half, rng)
        return errors_on(None, values, (0.25, 0.5, 0.75, 0.95))

    def test_dd_udd_stable_at_the_boundary(self, shift_errors):
        # Sec 4.5.7: DD/UDD accuracy at the 0.5 quantile stays stable.
        assert shift_errors["ddsketch"][0.5] <= 0.0101
        assert shift_errors["uddsketch"][0.5] <= 0.0101

    def test_sampling_sketches_jump_at_the_boundary(self):
        # Sec 4.5.7: KLL and REQ discard the boundary value with high
        # probability and answer from the other regime, producing a
        # large jump — a probabilistic event, so check across seeds.
        rng = np.random.default_rng(17)
        half = 50_000
        values = adaptability_workload(half, half).sample(2 * half, rng)
        true_sorted = np.sort(values)
        true_median = true_quantile(true_sorted, 0.5)
        jumps = {"kll": [], "req": []}
        for seed in range(6):
            for name in jumps:
                sketch = paper_config(name, seed=seed)
                sketch.update_batch(values)
                jumps[name].append(
                    relative_error(true_median, sketch.quantile(0.5))
                )
        # At least one sampling sketch shows the boundary jump, and KLL
        # shows it in a majority of runs.
        assert max(max(v) for v in jumps.values()) > 0.05
        assert np.mean(jumps["kll"]) > 0.01

    def test_moments_confused_by_the_shift(self, shift_errors):
        assert shift_errors["moments"][0.5] > 0.01


class TestTable3Shape:
    def test_size_ordering(self):
        # Table 3: moments << {kll, dds} < {req} < udds (Pareto row).
        rng = np.random.default_rng(6)
        values = DriftingPareto().sample(N, rng)
        sizes = {}
        for name in SKETCHES:
            sketch = paper_config(name, dataset="pareto", seed=0)
            sketch.update_batch(values)
            sizes[name] = sketch.size_bytes()
        assert sizes["moments"] == min(sizes.values())
        assert sizes["moments"] < 200
        assert sizes["uddsketch"] == max(sizes.values())
        assert sizes["kll"] < sizes["req"]
