"""Tests for TrafficHarness: bookkeeping, rendezvous, exact overload."""

from __future__ import annotations

import pytest

from repro.workload import TrafficHarness


class TestLedger:
    def test_accepted_traffic_is_counted(self):
        with TrafficHarness(queue_size=64) as harness:
            assert harness.ingest("lat", [1.0, 2.0, 3.0])
            harness.advance(1_000.0)
            traffic = harness.traffic()
        assert traffic["offered_batches"] == 1
        assert traffic["offered_values"] == 3
        assert traffic["accepted_values"] == 3
        assert traffic["shed_values"] == 0
        assert traffic["failed_batches"] == 0
        assert harness.shed_rate == 0.0

    def test_clock_is_shared_and_manual(self):
        with TrafficHarness() as harness:
            start = harness.clock.now_ms()
            harness.ingest("lat", [1.0])
            harness.barrier()
            assert harness.clock.now_ms() == start
            harness.advance(2_500.0)
            assert harness.clock.now_ms() == start + 2_500.0

    def test_failed_batches_counted_when_server_dies(self):
        with TrafficHarness() as harness:
            harness.server.stop()
            assert not harness.ingest("lat", [1.0])
            traffic = harness.traffic()
            assert traffic["failed_batches"] == 1
            assert traffic["accepted_values"] == 0
            harness.server.start()  # so stop() tears down cleanly


class TestOverloadRendezvous:
    def test_free_capacity_is_exact_after_overload(self):
        queue_size = 8
        workers = 2
        extra = 3
        with TrafficHarness(
            queue_size=queue_size, workers=workers
        ) as harness:
            harness.overload()
            assert harness.server.parked_workers() == workers
            accepted = shed = 0
            for _ in range(queue_size + extra):
                if harness.ingest("lat", [1.0]):
                    accepted += 1
                else:
                    shed += 1
            assert accepted == queue_size
            assert shed == extra
            assert harness.shed_batches == extra
            harness.release()
            assert harness.server.parked_workers() == 0
            assert harness.server.queue_depth() == 0
            # Everything accepted (parkers included) was applied.
            assert (
                harness.server_stat("events_recorded")
                == harness.accepted_values
            )

    def test_release_is_timeless_under_manual_clock(self):
        with TrafficHarness(queue_size=8, workers=1) as harness:
            harness.overload()
            harness.ingest("lat", [1.0, 2.0])
            assert harness.release() == 0.0

    def test_shed_responses_do_not_count_as_transport_retries(self):
        """Satellite guarantee: backpressure != transport failure."""
        with TrafficHarness(queue_size=2, workers=1) as harness:
            harness.overload()
            for _ in range(5):
                harness.ingest("lat", [1.0])
            counters = harness.telemetry.snapshot()["counters"]
            assert counters["client.shed_responses"] == 3
            assert "client.transport_retries" not in counters
            harness.release()


class TestClients:
    def test_new_clients_share_clock_and_get_distinct_jitter_seeds(self):
        with TrafficHarness(seed=7) as harness:
            second = harness.new_client()
            assert second is not harness.client
            assert second.ingest("lat", [1.0]) == 1
            harness.barrier()

    def test_span_p99_is_deterministically_zero_under_manual_clock(self):
        with TrafficHarness() as harness:
            harness.ingest("lat", [1.0] * 10)
            harness.advance(1_000.0)
            harness.client.quantile("lat", 0.5)
            assert harness.span_p99_us("server.op.ingest") == 0.0
            assert harness.span_p99_us("server.op.quantile") == 0.0

    def test_wall_telemetry_times_spans_for_real(self):
        with TrafficHarness(wall_telemetry=True) as harness:
            harness.ingest("lat", [1.0] * 10)
            harness.advance(1_000.0)
            snapshot = harness.telemetry.snapshot()
            span = snapshot["histograms"]["span.server.op.ingest"]
            assert span["count"] >= 1
