"""What-if replay determinism, swept across the paper's sketch registry.

The satellite guarantee: replaying one recorded WAL through an altered
sketch configuration is deterministic — two replays of the same
recording through the same config produce byte-identical store dumps
(digests of snapshot bytes), for **every** sketch the paper studies.
"""

from __future__ import annotations

import pytest

from repro.core.registry import PAPER_SKETCHES
from repro.service.protocol import encode_message
from repro.workload import (
    WhatIfConfig,
    record_workload,
    replay_config,
    replay_whatif,
)


@pytest.fixture(scope="module")
def recording(tmp_path_factory):
    """One recorded workload shared by every replay test in the module."""
    data_dir = tmp_path_factory.mktemp("whatif-wal")
    ledger = record_workload(
        data_dir, seed=97, ticks=3, batches_per_tick=3, batch_size=10
    )
    return data_dir, ledger


class TestRecording:
    def test_recording_leaves_a_replayable_wal(self, recording):
        data_dir, ledger = recording
        assert ledger["accepted_values"] == ledger["offered_values"]
        summary = replay_config(
            data_dir, WhatIfConfig("base", "kll", seed=97)
        )
        assert summary["records_replayed"] == ledger["offered_batches"]
        assert summary["records_rejected"] == 0
        total = sum(
            store["count"] for store in summary["stores"].values()
        )
        assert total == ledger["accepted_values"]


class TestReplayDeterminism:
    @pytest.mark.parametrize("sketch", PAPER_SKETCHES)
    def test_two_replays_are_byte_identical(self, recording, sketch):
        data_dir, _ledger = recording
        config = WhatIfConfig(f"paper-{sketch}", sketch, seed=97)
        first = replay_config(data_dir, config)
        second = replay_config(data_dir, config)
        assert encode_message(first) == encode_message(second)
        for store in first["stores"].values():
            assert len(store["digest"]) == 64  # sha256 hex

    def test_different_configs_give_different_stores(self, recording):
        data_dir, _ledger = recording
        result = replay_whatif(
            data_dir,
            [
                WhatIfConfig("kll", "kll", seed=97),
                WhatIfConfig("ddsketch", "ddsketch", seed=97),
            ],
        )
        kll = result["configs"]["kll"]["stores"]
        dd = result["configs"]["ddsketch"]["stores"]
        assert set(kll) == set(dd)  # same series, different contents
        digests = {
            tuple(sorted(store["digest"] for store in stores.values()))
            for stores in (kll, dd)
        }
        assert len(digests) == 2

    def test_explicit_params_route_through_make_sketch(self, recording):
        data_dir, _ledger = recording
        coarse = replay_config(
            data_dir,
            WhatIfConfig(
                "coarse", "kll", params={"max_compactor_size": 50}
            ),
        )
        fine = replay_config(
            data_dir,
            WhatIfConfig(
                "fine", "kll", params={"max_compactor_size": 1_000}
            ),
        )
        assert coarse["records_replayed"] == fine["records_replayed"]
        for key, store in coarse["stores"].items():
            # The compactor bound is encoded in every snapshot, so the
            # dumps differ even before any compaction happens.
            assert store["digest"] != fine["stores"][key]["digest"]
