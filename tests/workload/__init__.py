"""Tests for the production traffic simulator (repro.workload)."""
