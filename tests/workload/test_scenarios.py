"""The scenario catalog: every scenario passes, deterministically."""

from __future__ import annotations

import json

import pytest

from repro.errors import InvalidValueError
from repro.service.protocol import encode_message
from repro.workload import SCENARIOS, run_scenario
from repro.workload.cli import main


class TestCatalog:
    def test_catalog_names(self):
        assert set(SCENARIOS) == {
            "diurnal",
            "hot_tenant",
            "flash_crowd",
            "reconnect_storm",
            "slow_consumer",
            "proxy",
            "whatif",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InvalidValueError):
            run_scenario("thundering_herd")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes_fast(self, name):
        report = run_scenario(name, fast=True)
        assert report["scenario"] == name
        assert report["fast"] is True
        assert report["slos"], "a scenario must assert something"
        failed = [s["name"] for s in report["slos"] if not s["passed"]]
        assert report["passed"], f"failed SLOs: {failed}"
        assert report["traffic"]["offered_values"] > 0
        # Canonical-JSON encodable: the determinism gate depends on it.
        encode_message(report)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["flash_crowd", "reconnect_storm"])
    def test_same_seed_same_report_bytes(self, name):
        first = run_scenario(name, seed=11, fast=True)
        second = run_scenario(name, seed=11, fast=True)
        assert encode_message(first) == encode_message(second)

    def test_distinct_seeds_change_the_traffic(self):
        a = run_scenario("diurnal", seed=1, fast=True)
        b = run_scenario("diurnal", seed=2, fast=True)
        assert a["metrics"]["final_p99"] != b["metrics"]["final_p99"]


class TestCli:
    def test_single_scenario_exit_zero(self, capsys):
        assert main(["--scenario", "flash_crowd", "--fast", "--once"]) == 0
        out = capsys.readouterr().out
        assert "flash_crowd" in out
        assert "PASS" in out

    def test_unknown_scenario_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "thundering_herd"])

    def test_json_output_round_trips(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = main(
            [
                "--scenario", "slow_consumer", "--fast", "--once",
                "--json", "--output", str(path),
            ]
        )
        assert code == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(path.read_text())
        assert stdout_doc == file_doc
        assert file_doc["passed"] is True
        assert "slow_consumer" in file_doc["scenarios"]
