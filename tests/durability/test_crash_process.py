"""Hard-kill smoke test: SIGKILL a real server process, then recover.

The in-process sweep (:mod:`tests.durability.test_crash_sweep`) covers
every fault boundary deterministically; this test covers the one thing
it cannot — an actual process death with no Python teardown at all —
through the public CLI entry point.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service import QuantileClient

BANNER = re.compile(r"serving .* on ([\w.\-]+):(\d+)")


def spawn_server(data_dir, extra=()):
    env = dict(os.environ)
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    env["PYTHONPATH"] = os.path.abspath(os.path.join(root, "src"))
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--durability", "on", "--data-dir", str(data_dir),
            "--flush-policy", "always",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + 20.0
    while True:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before banner (rc={process.poll()})"
            )
        match = BANNER.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("no serve banner within 20s")


@pytest.mark.slow
def test_sigkill_then_recover(tmp_path):
    process, host, port = spawn_server(tmp_path)
    try:
        with QuantileClient(host, port, timeout=5.0, retries=0) as cli:
            acked = 0
            for index in range(20):
                acked += cli.ingest(
                    "lat",
                    [float(v) for v in range(index, index + 50)],
                )
            cli.flush()
            assert acked == 20 * 50
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    # Every acked batch was fsynced (--flush-policy always): the
    # restarted process must serve all of them.
    process, host, port = spawn_server(tmp_path)
    try:
        with QuantileClient(host, port, timeout=5.0, retries=0) as cli:
            assert cli.count("lat") == acked
            assert cli.stats()["durability_last_seq"] == 20
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10.0)
