"""Unit tests for the atomic publication primitives."""

from __future__ import annotations

import pytest

from repro.durability.atomicio import atomic_write_bytes, atomic_write_text
from repro.durability.faults import CrashInjector, InjectedIOError


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        result = atomic_write_bytes(target, b"payload")
        assert result == target
        assert target.read_bytes() == b"payload"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.bin"
        atomic_write_bytes(target, b"x")
        assert target.read_bytes() == b"x"

    def test_text_helper_encodes(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "héllo\n")
        assert target.read_text(encoding="utf-8") == "héllo\n"

    def test_no_temp_debris_after_success(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestCrashAtEveryBoundary:
    """An interrupted publication must leave the old file intact."""

    @pytest.mark.parametrize(
        "site", ["atomic.write", "atomic.sync", "atomic.replace"]
    )
    def test_old_content_survives_fault(self, tmp_path, site):
        target = tmp_path / "out.bin"
        target.write_bytes(b"previous")
        injector = CrashInjector(site)
        with pytest.raises(InjectedIOError):
            atomic_write_bytes(target, b"next", fault=injector)
        assert injector.fired
        if site == "atomic.replace":
            # The rename already happened; the fault lands after the
            # point of no return, so the *new* content is visible —
            # still never a truncated hybrid.
            assert target.read_bytes() == b"next"
        else:
            assert target.read_bytes() == b"previous"

    @pytest.mark.parametrize("site", ["atomic.write", "atomic.sync"])
    def test_no_temp_debris_after_fault(self, tmp_path, site):
        target = tmp_path / "out.bin"
        target.write_bytes(b"previous")
        with pytest.raises(InjectedIOError):
            atomic_write_bytes(
                target, b"next", fault=CrashInjector(site)
            )
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestCrashInjector:
    def test_fires_once_then_spent(self):
        injector = CrashInjector("wal.append", countdown=2)
        injector.check("wal.append")  # 1st pass
        with pytest.raises(InjectedIOError):
            injector.check("wal.append")  # 2nd fires
        injector.check("wal.append")  # spent: passes again
        assert injector.fired

    def test_other_sites_pass(self):
        injector = CrashInjector("wal.fsync")
        injector.check("wal.append")
        injector.check("checkpoint.encode")
        assert not injector.fired
