"""Unit tests for checkpoint encode/decode/publish/prune."""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.checkpoint import (
    Checkpointer,
    checkpoint_path,
    decode_checkpoint,
    encode_checkpoint,
    list_checkpoints,
)
from repro.durability.faults import CrashInjector, InjectedIOError
from repro.errors import CheckpointError
from repro.service.clock import ManualClock
from repro.service.registry import MetricRegistry


def make_registry(seed_clock=1_000_000.0, **kwargs):
    clock = ManualClock(seed_clock)
    return MetricRegistry(clock=clock, **kwargs), clock


def fill(registry, clock, metrics=("lat", "rps"), batches=20):
    rng = np.random.default_rng(7)
    for _ in range(batches):
        for name in metrics:
            registry.record(
                name, (1.0 + rng.pareto(1.0, 25)).tolist(),
                clock.now_ms(), {"svc": "api"},
            )
        clock.advance(50.0)


class TestCodec:
    def test_round_trip_restores_identical_stores(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        data = encode_checkpoint(registry, wal_seq=40, created_ms=123.0)
        path = checkpoint_path(tmp_path, 40)
        path.write_bytes(data)
        loaded = decode_checkpoint(path)
        assert loaded.wal_seq == 40
        assert loaded.created_ms == 123.0
        assert len(loaded.stores) == 2

        target, _ = make_registry()
        assert loaded.restore_into(target) == 2
        for key in registry.keys():
            original = registry.get(key.name, key.as_dict())
            restored = target.get(key.name, key.as_dict())
            assert restored.snapshot() == original.snapshot()

    def test_encoding_is_deterministic(self):
        registry, clock = make_registry()
        fill(registry, clock)
        a = encode_checkpoint(registry, 10, 5.0)
        b = encode_checkpoint(registry, 10, 5.0)
        assert a == b

    def test_refuses_restore_into_nonempty_registry(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        path = checkpoint_path(tmp_path, 1)
        path.write_bytes(encode_checkpoint(registry, 1, 0.0))
        loaded = decode_checkpoint(path)
        with pytest.raises(CheckpointError):
            loaded.restore_into(registry)

    def test_crc_failure_detected(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        path = checkpoint_path(tmp_path, 1)
        data = bytearray(encode_checkpoint(registry, 1, 0.0))
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            decode_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        path = checkpoint_path(tmp_path, 1)
        data = encode_checkpoint(registry, 1, 0.0)
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            decode_checkpoint(path)

    def test_bad_magic_detected(self, tmp_path):
        path = checkpoint_path(tmp_path, 1)
        path.write_bytes(b"XXXX" + b"\x01" + b"\x00" * 8)
        with pytest.raises(CheckpointError):
            decode_checkpoint(path)

    def test_hot_metric_shape_survives(self, tmp_path):
        registry, clock = make_registry(hot_metrics=("lat",), n_shards=3)
        fill(registry, clock)
        path = checkpoint_path(tmp_path, 1)
        path.write_bytes(encode_checkpoint(registry, 1, 0.0))
        target, _ = make_registry(hot_metrics=("lat",), n_shards=3)
        decode_checkpoint(path).restore_into(target)
        for key in registry.keys():
            assert (
                target.get(key.name, key.as_dict()).snapshot()
                == registry.get(key.name, key.as_dict()).snapshot()
            )


class TestCheckpointer:
    def test_write_and_latest(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        checkpointer = Checkpointer(tmp_path)
        checkpointer.write(registry, wal_seq=7, created_ms=1.0)
        loaded = checkpointer.latest()
        assert loaded is not None
        assert loaded.wal_seq == 7

    def test_prunes_to_keep(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        checkpointer = Checkpointer(tmp_path, keep=2)
        for seq in (1, 2, 3, 4):
            checkpointer.write(registry, wal_seq=seq, created_ms=0.0)
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert len(names) == 2
        assert checkpointer.latest().wal_seq == 4

    def test_latest_skips_invalid_newest(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        checkpointer = Checkpointer(tmp_path)
        checkpointer.write(registry, wal_seq=1, created_ms=0.0)
        # A corrupt newer file must fall back, not strand recovery.
        bogus = checkpoint_path(tmp_path, 9)
        bogus.write_bytes(b"RPCK\x01garbage")
        assert checkpointer.latest().wal_seq == 1

    def test_latest_empty_directory(self, tmp_path):
        assert Checkpointer(tmp_path / "missing").latest() is None

    def test_fault_during_publish_preserves_previous(self, tmp_path):
        registry, clock = make_registry()
        fill(registry, clock)
        checkpointer = Checkpointer(tmp_path)
        checkpointer.write(registry, wal_seq=1, created_ms=0.0)
        faulty = Checkpointer(
            tmp_path, fault=CrashInjector("atomic.write")
        )
        with pytest.raises(InjectedIOError):
            faulty.write(registry, wal_seq=2, created_ms=1.0)
        assert checkpointer.latest().wal_seq == 1

    def test_keep_validation(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path, keep=0)
