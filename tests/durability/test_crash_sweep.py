"""Crash-consistency sweep: the property the durability layer sells.

For every fault site and every countdown — i.e. a simulated crash at
every WAL record boundary and at every stage of a checkpoint — recovery
must rebuild a registry whose store snapshots are *byte-identical* to a
never-crashed registry fed the acked prefix of the workload.

One deliberate relaxation, the classic fsync ambiguity: an op whose
``journal()`` raised *after* the record reached disk (fsync reported
failure, or the crash hit between write and ack) was never acked but
may legitimately survive replay.  Recovery may therefore land on either
``acked`` or ``acked + the one in-flight op`` — never anything else,
and never losing an acked op.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.faults import KNOWN_SITES, CrashInjector
from repro.durability.manager import DurabilityManager
from repro.durability.wal import FlushPolicy
from repro.service.clock import ManualClock
from repro.service.registry import MetricRegistry

# The whole sweep runs under the runtime lock sanitizer; the
# record-boundary sweep additionally audits which locks were held at
# each injected fault site via wrap_fault.
pytestmark = pytest.mark.usefixtures("lock_sanitizer")

EPOCH_MS = 1_000_000.0
N_OPS = 15
CHECKPOINT_AFTER = {6, 12}  # 1-based op numbers followed by a checkpoint

# Sites hit once per journaled record: sweep every record boundary.
RECORD_SITES = ("wal.append", "wal.append.partial", "wal.fsync")
# Sites hit once per checkpoint attempt: sweep both checkpoints.
CHECKPOINT_SITES = (
    "wal.rotate",
    "checkpoint.encode",
    "atomic.write",
    "atomic.sync",
    "atomic.replace",
    "checkpoint.truncate",
)


def plan_ops():
    """Deterministic workload: two metrics, mixed tags, fixed batches."""
    rng = np.random.default_rng(2024)
    ops = []
    for number in range(1, N_OPS + 1):
        metric = "lat" if number % 2 else "rps"
        tags = {"svc": "api"} if number % 3 else None
        values = (1.0 + rng.pareto(1.0, 20)).tolist()
        ops.append((metric, tags, values, number in CHECKPOINT_AFTER))
    return ops


def snapshot_all(registry):
    return {
        (key.name, tuple(sorted((key.as_dict() or {}).items()))):
            registry.get(key.name, key.as_dict()).snapshot()
        for key in registry.keys()
    }


def run_until_crash(data_dir, fault):
    """Drive the workload journal-then-apply until a fault 'kills' it.

    Returns ``(acked, pending, crashed)`` where *acked* holds the ops
    whose journal append returned (the only ops a client saw acked)
    and *pending* the op in flight when the crash hit, if any.
    """
    clock = ManualClock(EPOCH_MS)
    manager = DurabilityManager(
        data_dir,
        clock=clock,
        flush_policy=FlushPolicy(mode="always"),
        fault=fault,
    )
    registry = MetricRegistry(clock=clock)
    manager.recover(registry)
    acked = []
    pending = None
    crashed = False
    try:
        for metric, tags, values, checkpoint_after in plan_ops():
            stamp = clock.now_ms()  # journal() resolves ts = now = this
            pending = (metric, tags, values, stamp, stamp)
            seq, ts, now = manager.journal(metric, tags, values, None)
            registry.record(metric, values, ts, tags, now_ms=now)
            acked.append((metric, tags, values, ts, now))
            pending = None
            clock.advance(40.0)
            if checkpoint_after:
                manager.checkpoint_now(registry)
    except OSError:
        crashed = True
        # Simulated process death: no clean close, no final sync.
    else:
        manager.close()
    return acked, pending, crashed


def replay_control(ops):
    """A never-crashed registry fed exactly *ops* (with pinned clocks)."""
    clock = ManualClock(EPOCH_MS)
    registry = MetricRegistry(clock=clock)
    for metric, tags, values, ts, now in ops:
        registry.record(metric, values, ts, tags, now_ms=now)
    return registry


def recover_fresh(data_dir):
    clock = ManualClock(EPOCH_MS + 10 * 60 * 1000.0)
    manager = DurabilityManager(data_dir, clock=clock)
    registry = MetricRegistry(clock=clock)
    report = manager.recover(registry)
    manager.close()
    return registry, report


def assert_crash_consistent(data_dir, acked, pending):
    recovered, report = recover_fresh(data_dir)
    got = snapshot_all(recovered)
    want_acked = snapshot_all(replay_control(acked))
    if got == want_acked:
        return report
    assert pending is not None, (
        "recovered state diverges from the acked prefix with no op in "
        "flight at crash time"
    )
    want_with_pending = snapshot_all(replay_control(acked + [pending]))
    assert got == want_with_pending, (
        "recovered state matches neither the acked prefix nor acked + "
        "the in-flight op"
    )
    return report


def test_baseline_no_fault_round_trips(tmp_path):
    acked, pending, crashed = run_until_crash(tmp_path, None)
    assert not crashed and pending is None and len(acked) == N_OPS
    report = assert_crash_consistent(tmp_path, acked, None)
    assert report.checkpoint_seq == 12
    assert report.records_replayed == 3


def test_all_known_sites_exercised():
    """The sweep must cover every registered fault site."""
    assert set(RECORD_SITES) | set(CHECKPOINT_SITES) == set(KNOWN_SITES)


@pytest.mark.parametrize("countdown", range(1, N_OPS + 1))
@pytest.mark.parametrize("site", RECORD_SITES)
def test_crash_at_every_record_boundary(
    tmp_path, site, countdown, lock_sanitizer
):
    injector = lock_sanitizer.wrap_fault(
        CrashInjector(site, countdown=countdown)
    )
    acked, pending, crashed = run_until_crash(tmp_path, injector)
    assert crashed or not injector.fired
    assert_crash_consistent(tmp_path, acked, pending)
    if crashed:
        # Record-boundary faults fire inside the WAL's log lock — the
        # designed behaviour DESIGN §13 documents.  The sanitizer's
        # audit must have seen it, and seen *only* the WAL lock: a
        # crash that strands any other lock would be a real bug.
        audits = [f for f in lock_sanitizer.faults_under_lock
                  if f.site == site]
        assert audits, f"{site} fired with no lock audit recorded"
        for audit in audits:
            assert all("wal" in label for label in audit.locks), audit


@pytest.mark.parametrize("countdown", (1, 2))
@pytest.mark.parametrize("site", CHECKPOINT_SITES)
def test_crash_mid_checkpoint(tmp_path, site, countdown):
    injector = CrashInjector(site, countdown=countdown)
    acked, pending, crashed = run_until_crash(tmp_path, injector)
    assert crashed, f"{site} countdown={countdown} never fired"
    # A checkpoint crash happens between ops: nothing was in flight,
    # so recovery must reproduce the acked prefix exactly.
    assert pending is None
    assert_crash_consistent(tmp_path, acked, None)


@pytest.mark.parametrize("site", RECORD_SITES)
def test_double_crash_then_recover(tmp_path, site):
    """Crash, recover, crash again mid-continuation, recover again."""
    first = CrashInjector(site, countdown=5)
    acked, pending, _ = run_until_crash(tmp_path, first)
    recovered, _ = recover_fresh(tmp_path)

    clock = ManualClock(EPOCH_MS + 20 * 60 * 1000.0)
    manager = DurabilityManager(
        tmp_path,
        clock=clock,
        flush_policy=FlushPolicy(mode="always"),
        fault=CrashInjector(site, countdown=3),
    )
    registry = MetricRegistry(clock=clock)
    manager.recover(registry)
    baseline = snapshot_all(registry)
    survivors = []
    in_flight = None
    rng = np.random.default_rng(77)
    try:
        for _ in range(6):
            values = (1.0 + rng.pareto(1.0, 10)).tolist()
            stamp = clock.now_ms()
            in_flight = ("lat", None, values, stamp, stamp)
            _, ts, now = manager.journal("lat", None, values, None)
            registry.record("lat", values, ts, None, now_ms=now)
            survivors.append(("lat", None, values, ts, now))
            in_flight = None
            clock.advance(40.0)
    except OSError:
        pass

    final, _ = recover_fresh(tmp_path)
    got = snapshot_all(final)
    want = snapshot_all(registry)
    if got != want:
        # The in-flight op may have reached disk before the ack failed.
        assert in_flight is not None
        metric, tags, values, ts, now = in_flight
        registry.record(metric, values, ts, tags, now_ms=now)
        assert got == snapshot_all(registry)
    assert baseline  # first crash left data behind, not an empty dir
