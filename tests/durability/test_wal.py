"""Unit tests for the segmented, checksummed write-ahead log."""

from __future__ import annotations

import struct

import pytest

from repro.durability.faults import CrashInjector, InjectedIOError
from repro.durability.wal import (
    RECORD_HEADER_SIZE,
    SEGMENT_HEADER_SIZE,
    FlushPolicy,
    WriteAheadLog,
    list_segments,
    scan_segment,
    segment_path,
)
from repro.errors import InvalidValueError, WALError


def payloads_of(directory, after_seq=0):
    wal = WriteAheadLog(directory)
    return list(wal.replay(after_seq=after_seq))


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append(b"one") == 1
            assert wal.append(b"two") == 2
            assert wal.append(b"three") == 3
        assert payloads_of(tmp_path) == [
            (1, b"one"), (2, b"two"), (3, b"three"),
        ]

    def test_replay_after_seq(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for index in range(5):
                wal.append(f"r{index}".encode())
        assert payloads_of(tmp_path, after_seq=3) == [
            (4, b"r3"), (5, b"r4"),
        ]

    def test_empty_payload_round_trips(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"")
        assert payloads_of(tmp_path) == [(1, b"")]

    def test_reopen_continues_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"a")
            wal.append(b"b")
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 2
            assert wal.append(b"c") == 3
        assert [seq for seq, _ in payloads_of(tmp_path)] == [1, 2, 3]


class TestRotation:
    def test_rotation_by_size(self, tmp_path):
        max_bytes = SEGMENT_HEADER_SIZE + 2 * (RECORD_HEADER_SIZE + 8)
        with WriteAheadLog(tmp_path, segment_max_bytes=max_bytes) as wal:
            for index in range(5):
                wal.append(b"x" * 8)
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        assert payloads_of(tmp_path) == [
            (index + 1, b"x" * 8) for index in range(5)
        ]

    def test_explicit_rotate_seals_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"a")
            wal.rotate()
            wal.append(b"b")
        names = [p.name for p in list_segments(tmp_path)]
        assert names == [
            segment_path(tmp_path, 1).name,
            segment_path(tmp_path, 2).name,
        ]
        assert payloads_of(tmp_path) == [(1, b"a"), (2, b"b")]

    def test_rotate_empty_segment_is_noop(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.rotate()
            wal.rotate()
            wal.append(b"a")
        assert len(list_segments(tmp_path)) == 1

    def test_oversized_record_still_fits(self, tmp_path):
        small = SEGMENT_HEADER_SIZE + RECORD_HEADER_SIZE + 4
        big = b"y" * 64
        with WriteAheadLog(tmp_path, segment_max_bytes=small) as wal:
            wal.append(big)
            wal.append(big)
        assert payloads_of(tmp_path) == [(1, big), (2, big)]


class TestTornTail:
    def _write_then_tear(self, tmp_path, tear_bytes):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"keep-1")
            wal.append(b"keep-2")
            wal.append(b"torn-record")
        path = list_segments(tmp_path)[-1]
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - tear_bytes])

    @pytest.mark.parametrize("tear_bytes", [1, 5, 11, 15])
    def test_torn_final_record_is_dropped(self, tmp_path, tear_bytes):
        self._write_then_tear(tmp_path, tear_bytes)
        assert payloads_of(tmp_path) == [(1, b"keep-1"), (2, b"keep-2")]

    def test_open_repairs_torn_tail(self, tmp_path):
        self._write_then_tear(tmp_path, 4)
        wal = WriteAheadLog(tmp_path).open()
        try:
            assert wal.torn_bytes_repaired > 0
            assert wal.last_seq == 2
            assert wal.append(b"after-repair") == 3
        finally:
            wal.close()
        assert payloads_of(tmp_path) == [
            (1, b"keep-1"), (2, b"keep-2"), (3, b"after-repair"),
        ]

    def test_corrupt_crc_in_final_segment_is_torn(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"good")
            wal.append(b"flipped")
        path = list_segments(tmp_path)[-1]
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        assert payloads_of(tmp_path) == [(1, b"good")]

    def test_corruption_in_sealed_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"sealed")
            wal.rotate()
            wal.append(b"active")
        sealed = list_segments(tmp_path)[0]
        data = bytearray(sealed.read_bytes())
        data[-1] ^= 0xFF
        sealed.write_bytes(bytes(data))
        with pytest.raises(WALError):
            payloads_of(tmp_path)

    def test_bad_magic_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"x")
        path = list_segments(tmp_path)[0]
        path.write_bytes(b"NOPE" + path.read_bytes()[4:])
        with pytest.raises(WALError):
            payloads_of(tmp_path)

    def test_header_mismatch_with_name_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"x")
        path = list_segments(tmp_path)[0]
        data = bytearray(path.read_bytes())
        struct.pack_into("<Q", data, 5, 42)  # claim first_seq=42
        path.write_bytes(bytes(data))
        with pytest.raises(WALError):
            payloads_of(tmp_path)

    def test_gap_between_segments_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"a")
            wal.rotate()
            wal.append(b"b")
            wal.rotate()
            wal.append(b"c")
        middle = list_segments(tmp_path)[1]
        middle.unlink()
        with pytest.raises(WALError):
            payloads_of(tmp_path)


class TestFlushPolicy:
    def test_validation(self):
        with pytest.raises(InvalidValueError):
            FlushPolicy(mode="sometimes")
        with pytest.raises(InvalidValueError):
            FlushPolicy(batch_records=0)

    def test_always_syncs_every_append(self, tmp_path):
        with WriteAheadLog(
            tmp_path, flush_policy=FlushPolicy(mode="always")
        ) as wal:
            wal.append(b"a")
            assert wal.pending_sync_records == 0

    def test_batch_defers_until_threshold(self, tmp_path):
        policy = FlushPolicy(mode="batch", batch_records=3)
        with WriteAheadLog(tmp_path, flush_policy=policy) as wal:
            wal.append(b"a")
            wal.append(b"b")
            assert wal.pending_sync_records == 2
            wal.append(b"c")
            assert wal.pending_sync_records == 0

    def test_batch_bytes_threshold(self, tmp_path):
        policy = FlushPolicy(
            mode="batch", batch_records=10_000, batch_bytes=64
        )
        with WriteAheadLog(tmp_path, flush_policy=policy) as wal:
            wal.append(b"z" * 100)
            assert wal.pending_sync_records == 0

    def test_os_never_syncs_until_forced(self, tmp_path):
        with WriteAheadLog(
            tmp_path, flush_policy=FlushPolicy(mode="os")
        ) as wal:
            for _ in range(100):
                wal.append(b"a")
            assert wal.pending_sync_records == 100
            wal.sync()
            assert wal.pending_sync_records == 0


class TestFaultPoisoning:
    def test_fsync_failure_poisons(self, tmp_path):
        injector = CrashInjector("wal.fsync")
        wal = WriteAheadLog(tmp_path, fault=injector).open()
        try:
            with pytest.raises(InjectedIOError):
                wal.append(b"doomed")
            with pytest.raises(WALError):
                wal.append(b"refused")
        finally:
            wal.close()

    def test_partial_append_leaves_recoverable_torn_tail(self, tmp_path):
        injector = CrashInjector("wal.append.partial", countdown=3)
        wal = WriteAheadLog(tmp_path, fault=injector).open()
        try:
            wal.append(b"one")
            wal.append(b"two")
            with pytest.raises(InjectedIOError):
                wal.append(b"torn")
        finally:
            wal.close()
        # The torn record header is on disk; open() must repair it.
        recovered = WriteAheadLog(tmp_path).open()
        try:
            assert recovered.last_seq == 2
            assert recovered.torn_bytes_repaired == RECORD_HEADER_SIZE
        finally:
            recovered.close()

    def test_reopen_after_poison_recovers(self, tmp_path):
        injector = CrashInjector("wal.append", countdown=2)
        wal = WriteAheadLog(tmp_path, fault=injector).open()
        try:
            wal.append(b"ok")
            with pytest.raises(InjectedIOError):
                wal.append(b"fails")
        finally:
            wal.close()
        with WriteAheadLog(tmp_path) as recovered:
            assert recovered.last_seq == 1
            assert recovered.append(b"continues") == 2


class TestTruncation:
    def _three_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path).open()
        wal.append(b"a")  # seq 1
        wal.rotate()
        wal.append(b"b")  # seq 2
        wal.rotate()
        wal.append(b"c")  # seq 3
        return wal

    def test_truncate_below_watermark(self, tmp_path):
        wal = self._three_segments(tmp_path)
        try:
            deleted = wal.truncate_upto(2)
            assert len(deleted) == 2
            assert [seq for seq, _ in wal.replay()] == [3]
        finally:
            wal.close()

    def test_partial_coverage_keeps_segment(self, tmp_path):
        wal = self._three_segments(tmp_path)
        try:
            deleted = wal.truncate_upto(1)
            assert len(deleted) == 1
            assert [seq for seq, _ in wal.replay()] == [2, 3]
        finally:
            wal.close()

    def test_active_segment_never_deleted(self, tmp_path):
        wal = self._three_segments(tmp_path)
        try:
            wal.truncate_upto(10_000)
            assert len(list_segments(tmp_path)) == 1
            assert wal.append(b"d") == 4
        finally:
            wal.close()


class TestScanSegment:
    def test_scan_reports_shape(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"abc")
            wal.append(b"defgh")
        path = list_segments(tmp_path)[0]
        scan, payloads = scan_segment(path, is_final=True)
        assert scan.records == 2
        assert scan.torn_bytes == 0
        assert payloads == [b"abc", b"defgh"]
        assert scan.valid_bytes == path.stat().st_size
