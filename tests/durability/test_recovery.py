"""DurabilityManager: journal → checkpoint → recover scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.faults import CrashInjector, InjectedIOError
from repro.durability.manager import DurabilityManager, record_payload
from repro.durability.wal import FlushPolicy, list_segments
from repro.service.clock import ManualClock
from repro.service.registry import MetricRegistry


def make_registry(clock):
    return MetricRegistry(clock=clock)


def snapshot_all(registry):
    return {
        (key.name, tuple(sorted((key.as_dict() or {}).items()))):
            registry.get(key.name, key.as_dict()).snapshot()
        for key in registry.keys()
    }


def ingest(manager, registry, clock, batches, metric="lat", start=0):
    """Journal + apply *batches* ops, mirroring the server's path."""
    rng = np.random.default_rng(1234 + start)
    for _ in range(batches):
        values = (1.0 + rng.pareto(1.0, 20)).tolist()
        seq, ts, now = manager.journal(metric, {"svc": "api"}, values, None)
        registry.record(metric, values, ts, {"svc": "api"}, now_ms=now)
        clock.advance(25.0)
    return registry


class TestRecoverFresh:
    def test_empty_data_dir(self, tmp_path):
        clock = ManualClock(1_000_000.0)
        with DurabilityManager(tmp_path, clock=clock) as manager:
            report = manager.recover(make_registry(clock))
            assert report.as_dict() == {
                "checkpoint_seq": 0,
                "checkpoint_stores": 0,
                "records_replayed": 0,
                "replay_rejected": 0,
                "torn_bytes_repaired": 0,
                "last_seq": 0,
            }
            assert manager.last_recovery is report


class TestRecoverRoundTrip:
    def _run(self, tmp_path, batches_before=30, batches_after=12):
        clock = ManualClock(1_000_000.0)
        manager = DurabilityManager(tmp_path, clock=clock)
        manager.wal.open()
        registry = make_registry(clock)
        ingest(manager, registry, clock, batches_before)
        manager.checkpoint_now(registry)
        ingest(manager, registry, clock, batches_after, start=1)
        manager.wal.sync()
        manager.close()
        return clock, snapshot_all(registry)

    def test_checkpoint_plus_suffix(self, tmp_path):
        clock, expected = self._run(tmp_path)
        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as manager:
            recovered = make_registry(fresh_clock)
            report = manager.recover(recovered)
            assert report.checkpoint_seq == 30
            assert report.records_replayed == 12
            assert report.last_seq == 42
            assert snapshot_all(recovered) == expected

    def test_wal_only_no_checkpoint(self, tmp_path):
        clock = ManualClock(1_000_000.0)
        manager = DurabilityManager(tmp_path, clock=clock)
        manager.wal.open()
        registry = make_registry(clock)
        ingest(manager, registry, clock, 17)
        manager.wal.sync()
        manager.close()
        expected = snapshot_all(registry)

        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as manager:
            recovered = make_registry(fresh_clock)
            report = manager.recover(recovered)
            assert report.checkpoint_seq == 0
            assert report.records_replayed == 17
            assert snapshot_all(recovered) == expected

    def test_recover_continues_sequence(self, tmp_path):
        clock, _ = self._run(tmp_path)
        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as manager:
            recovered = make_registry(fresh_clock)
            manager.recover(recovered)
            seq, _, _ = manager.journal("lat", None, [1.0], None)
            assert seq == 43

    def test_torn_tail_repaired_and_reported(self, tmp_path):
        clock, _ = self._run(tmp_path)
        segment = list_segments(tmp_path)[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])
        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as manager:
            report = manager.recover(make_registry(fresh_clock))
            assert report.torn_bytes_repaired > 0
            assert report.records_replayed == 11  # last record torn off
            assert report.last_seq == 41

    def test_invalid_checkpoint_falls_back_to_replay(self, tmp_path):
        clock, expected = self._run(tmp_path)
        # Corrupt every checkpoint: recovery must rebuild from seq 1.
        # The WAL suffix before the checkpoint was truncated, so this
        # only works when truncation hasn't happened — rerun without
        # a checkpoint to prove the fallback ordering instead.
        for ckpt in tmp_path.glob("checkpoint-*.ckpt"):
            payload = bytearray(ckpt.read_bytes())
            payload[-1] ^= 0xFF
            ckpt.write_bytes(bytes(payload))
        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as manager:
            recovered = make_registry(fresh_clock)
            report = manager.recover(recovered)
            assert report.checkpoint_seq == 0
            # Segments below the watermark were truncated at
            # checkpoint time; with no valid checkpoint the replay
            # starts at the oldest surviving segment.
            assert report.records_replayed == 12

    def test_replay_rejected_counted(self, tmp_path):
        clock = ManualClock(1_000_000.0)
        manager = DurabilityManager(tmp_path, clock=clock)
        manager.wal.open()
        registry = make_registry(clock)
        ingest(manager, registry, clock, 3)
        # Journal a record the registry will reject on apply (NaN).
        manager.journal("lat", None, [float("nan")], None)
        manager.wal.sync()
        manager.close()

        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as manager:
            report = manager.recover(make_registry(fresh_clock))
            assert report.records_replayed == 4
            assert report.replay_rejected == 1


class TestJournalEncoding:
    def test_payload_pins_ts_and_now(self, tmp_path):
        clock = ManualClock(5_000.0)
        with DurabilityManager(tmp_path, clock=clock) as manager:
            seq, ts, now = manager.journal(
                "lat", {"a": "b"}, [1.5, float("inf")], None
            )
            assert (seq, ts, now) == (1, 5_000.0, 5_000.0)
            clock.advance(100.0)
            seq, ts, now = manager.journal("lat", None, [2.0], 42.0)
            assert (seq, ts, now) == (2, 42.0, 5_100.0)
            manager.wal.sync()
            payloads = list(manager.wal.replay())
        first = record_payload(payloads[0][1])
        assert first["ts"] == 5_000.0
        assert first["now"] == 5_000.0
        assert first["values"] == [1.5, float("inf")]
        second = record_payload(payloads[1][1])
        assert second["ts"] == 42.0
        assert second["now"] == 5_100.0
        assert second["tags"] is None


class TestCheckpointCadence:
    """Cadence is pure clock arithmetic — no sleeps anywhere."""

    def _manager(self, tmp_path, clock, interval=10_000.0):
        manager = DurabilityManager(
            tmp_path, clock=clock, checkpoint_interval_ms=interval
        )
        manager.wal.open()
        return manager

    def test_not_due_with_nothing_journaled(self, tmp_path):
        clock = ManualClock(0.0)
        manager = self._manager(tmp_path, clock)
        try:
            clock.advance(1_000_000.0)
            assert not manager.checkpoint_due()
        finally:
            manager.close()

    def test_due_follows_interval_exactly(self, tmp_path):
        clock = ManualClock(0.0)
        manager = self._manager(tmp_path, clock, interval=10_000.0)
        registry = make_registry(clock)
        try:
            manager.recover(registry)  # arms the cadence timer
            ingest(manager, registry, clock, 1)  # advances 25ms
            assert not manager.checkpoint_due()
            clock.advance(10_000.0 - 25.0 - 1.0)
            assert not manager.checkpoint_due()
            clock.advance(1.0)
            assert manager.checkpoint_due()
            manager.checkpoint_now(registry)
            assert not manager.checkpoint_due()
            # Due again only after new work AND another full interval.
            clock.advance(20_000.0)
            assert not manager.checkpoint_due()
            ingest(manager, registry, clock, 1, start=2)
            assert manager.checkpoint_due()
        finally:
            manager.close()

    def test_interval_zero_disables_cadence(self, tmp_path):
        clock = ManualClock(0.0)
        manager = self._manager(tmp_path, clock, interval=0.0)
        registry = make_registry(clock)
        try:
            manager.recover(registry)
            ingest(manager, registry, clock, 5)
            clock.advance(1e9)
            assert not manager.checkpoint_due()
        finally:
            manager.close()

    def test_negative_interval_rejected(self, tmp_path):
        from repro.errors import DurabilityError

        with pytest.raises(DurabilityError):
            DurabilityManager(tmp_path, checkpoint_interval_ms=-1.0)

    def test_checkpoint_truncates_wal(self, tmp_path):
        clock = ManualClock(0.0)
        manager = self._manager(tmp_path, clock)
        registry = make_registry(clock)
        try:
            manager.recover(registry)
            ingest(manager, registry, clock, 10)
            manager.checkpoint_now(registry)
            assert manager.last_checkpoint_seq == 10
            assert list(manager.wal.replay(after_seq=10)) == []
            # Old segments are gone: replay from zero starts past the
            # watermark.
            assert [s for s, _ in manager.wal.replay()] == []
        finally:
            manager.close()

    def test_stats_shape(self, tmp_path):
        clock = ManualClock(0.0)
        manager = self._manager(tmp_path, clock)
        registry = make_registry(clock)
        try:
            manager.recover(registry)
            ingest(manager, registry, clock, 4)
            manager.checkpoint_now(registry)
            stats = manager.stats()
            assert stats == {
                "durability_last_seq": 4,
                "durability_pending_sync": 0,
                "durability_checkpoint_seq": 4,
                "durability_records_journaled": 4,
                "durability_checkpoints_written": 1,
            }
        finally:
            manager.close()


class TestFaultsThroughManager:
    def test_checkpoint_truncate_fault_leaves_recoverable_state(
        self, tmp_path
    ):
        clock = ManualClock(0.0)
        manager = DurabilityManager(
            tmp_path,
            clock=clock,
            fault=CrashInjector("checkpoint.truncate"),
            flush_policy=FlushPolicy(mode="always"),
        )
        manager.wal.open()
        registry = make_registry(clock)
        ingest(manager, registry, clock, 8)
        expected = snapshot_all(registry)
        with pytest.raises(InjectedIOError):
            manager.checkpoint_now(registry)
        manager.close()

        # Checkpoint published but WAL not truncated: recovery must
        # still converge (replay past the watermark is empty).
        fresh_clock = ManualClock(clock.now_ms())
        with DurabilityManager(tmp_path, clock=fresh_clock) as recovered:
            target = make_registry(fresh_clock)
            report = recovered.recover(target)
            assert report.checkpoint_seq == 8
            assert report.records_replayed == 0
            assert snapshot_all(target) == expected
