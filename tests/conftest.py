"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import SCALES


@pytest.fixture
def lock_sanitizer():
    """Run the test under the runtime concurrency sanitizer.

    Every ``threading.Lock``/``RLock`` a ``repro.*`` module creates
    inside the test body is wrapped (build the system under test
    *inside* the test, not at import time), per-thread acquisition
    order is folded into a lock-order graph, and teardown fails the
    test on an ordering cycle or a watched-attribute race.
    """
    from repro.sanitizer import LockMonitor, instrumented

    monitor = LockMonitor()
    try:
        with instrumented(monitor):
            yield monitor
    finally:
        monitor.unwatch_all()
    monitor.verify()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests needing other seeds build their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def pareto_data(rng) -> np.ndarray:
    """50k samples of the paper's speed-test distribution Pareto(1, 1)."""
    return 1.0 + rng.pareto(1.0, 50_000)


@pytest.fixture
def uniform_data(rng) -> np.ndarray:
    """50k samples of U(30, 100) (the merge-workload uniform)."""
    return rng.uniform(30.0, 100.0, 50_000)


@pytest.fixture
def smoke_scale():
    """The CI-sized experiment scale."""
    return SCALES["smoke"]


def true_quantiles(values: np.ndarray, qs) -> dict[float, float]:
    """Exact rank-definition quantiles of *values* for each q."""
    import math

    s = np.sort(values)
    return {
        q: float(s[max(math.ceil(q * s.size), 1) - 1]) for q in qs
    }
