"""Unit tests for the kurtosis suite (Fig 7 workloads)."""

import numpy as np

from repro.data.kurtosis import excess_kurtosis, kurtosis_suite


class TestKurtosisSuite:
    def test_ordered_by_nominal_kurtosis(self):
        suite = kurtosis_suite()
        nominals = [nominal for _label, _dist, nominal in suite]
        assert nominals == sorted(nominals)

    def test_covers_the_papers_span(self):
        suite = kurtosis_suite()
        nominals = [nominal for _l, _d, nominal in suite]
        assert nominals[0] < 0  # a tail-free distribution
        assert nominals[-1] > 100  # an extremely long tail

    def test_labels_unique(self):
        labels = [label for label, _d, _n in kurtosis_suite()]
        assert len(labels) == len(set(labels))

    def test_empirical_kurtosis_tracks_nominal_ordering(self, rng):
        measured = []
        for _label, dist, _nominal in kurtosis_suite():
            samples = dist.sample(100_000, rng)
            measured.append(excess_kurtosis(samples))
        # Empirical kurtosis of heavy-tailed samples is noisy, but the
        # broad ordering must hold: first (uniform) lowest, last
        # (pareto) highest.
        assert measured[0] == min(measured)
        assert measured[-1] == max(measured)
        assert measured[0] < 0
        assert measured[-1] > 100

    def test_uniform_is_tail_free(self, rng):
        label, dist, _ = kurtosis_suite()[0]
        assert label == "uniform"
        samples = dist.sample(100_000, rng)
        assert excess_kurtosis(samples) < 0
