"""Unit tests for timestamped stream generation."""

import numpy as np
import pytest

from repro.data.distributions import Uniform
from repro.data.streams import EventBatch, generate_stream
from repro.errors import InvalidValueError


class TestEventBatch:
    def test_columns_must_align(self):
        with pytest.raises(InvalidValueError):
            EventBatch(
                values=np.zeros(3),
                event_times=np.zeros(2),
                arrival_times=np.zeros(3),
            )

    def test_len(self):
        batch = EventBatch(np.zeros(5), np.zeros(5), np.zeros(5))
        assert len(batch) == 5

    def test_in_arrival_order_sorts_stably(self):
        batch = EventBatch(
            values=np.asarray([1.0, 2.0, 3.0]),
            event_times=np.asarray([0.0, 1.0, 2.0]),
            arrival_times=np.asarray([9.0, 4.0, 4.0]),
        )
        ordered = batch.in_arrival_order()
        assert ordered.values.tolist() == [2.0, 3.0, 1.0]


class TestGenerateStream:
    def test_event_count_from_rate_and_duration(self, rng):
        batch = generate_stream(
            Uniform(0, 1), 5_000.0, rng, rate_per_sec=2_000
        )
        assert len(batch) == 10_000

    def test_paper_rate_and_window(self, rng):
        # Sec 4.2: 50k events/s and 20 s windows = 1M per window.
        batch = generate_stream(
            Uniform(0, 1), 200.0, rng, rate_per_sec=50_000
        )
        assert len(batch) == 10_000  # 0.2 s worth

    def test_no_delay_means_identical_times(self, rng):
        batch = generate_stream(
            Uniform(0, 1), 100.0, rng, rate_per_sec=1_000
        )
        assert np.array_equal(batch.event_times, batch.arrival_times)

    def test_delay_mean(self, rng):
        batch = generate_stream(
            Uniform(0, 1), 10_000.0, rng,
            rate_per_sec=5_000, delay_mean_ms=150.0,
        )
        delays = batch.arrival_times - batch.event_times
        assert delays.mean() == pytest.approx(150.0, rel=0.1)
        # Exponential: long tail present.
        assert delays.max() > 500.0

    def test_zero_delay_mean(self, rng):
        batch = generate_stream(
            Uniform(0, 1), 100.0, rng,
            rate_per_sec=1_000, delay_mean_ms=0.0,
        )
        assert np.array_equal(batch.event_times, batch.arrival_times)

    def test_validation(self, rng):
        with pytest.raises(InvalidValueError):
            generate_stream(Uniform(0, 1), -1.0, rng)
        with pytest.raises(InvalidValueError):
            generate_stream(Uniform(0, 1), 100.0, rng, rate_per_sec=0)
        with pytest.raises(InvalidValueError):
            generate_stream(
                Uniform(0, 1), 100.0, rng, delay_mean_ms=-5.0
            )
        with pytest.raises(InvalidValueError):
            generate_stream(Uniform(0, 1), 0.5, rng, rate_per_sec=1)
