"""Tests that the synthetic real-world generators reproduce the
properties the paper's analysis depends on (see DESIGN.md)."""

import numpy as np
import pytest

from repro.data.realworld import (
    NYT_AIRPORT_FARE,
    NYTFares,
    POWER_MAX,
    POWER_MIN,
    PowerConsumption,
)
from repro.metrics.stats import excess_kurtosis

N = 500_000


@pytest.fixture(scope="module")
def nyt_sample():
    return NYTFares().sample(N, np.random.default_rng(42))


@pytest.fixture(scope="module")
def power_sample():
    return PowerConsumption().sample(N, np.random.default_rng(42))


class TestNYTFares:
    def test_top10_share_matches_paper(self, nyt_sample):
        # Sec 4.5.3: the top 10 values carry ~31.2% of the mass.
        _values, counts = np.unique(nyt_sample, return_counts=True)
        share = np.sort(counts)[-10:].sum() / nyt_sample.size
        assert 0.27 <= share <= 0.36

    def test_top_values_are_the_paper_quartile_fares(self, nyt_sample):
        values, counts = np.unique(nyt_sample, return_counts=True)
        top4 = set(values[np.argsort(counts)[-4:]])
        assert top4 == {6.5, 7.5, 8.0, 9.0}

    def test_quartile_in_the_repeated_region(self, nyt_sample):
        q25 = np.quantile(nyt_sample, 0.25)
        assert 5.5 <= q25 <= 9.5

    def test_airport_fare_at_098_quantile(self, nyt_sample):
        # Sec 4.5.6: 57.3 sits at the 0.98 quantile, repeated >4000
        # times per million samples.
        q98 = np.quantile(nyt_sample, 0.98)
        assert abs(q98 - NYT_AIRPORT_FARE) / NYT_AIRPORT_FARE < 0.05
        per_million = (nyt_sample == NYT_AIRPORT_FARE).sum() / N * 1e6
        assert per_million > 4_000

    def test_long_right_tail(self, nyt_sample):
        assert excess_kurtosis(nyt_sample) > 10
        assert nyt_sample.max() > 3 * np.quantile(nyt_sample, 0.99)

    def test_fares_bounded_and_positive(self, nyt_sample):
        assert nyt_sample.min() >= 2.5
        assert nyt_sample.max() <= 250.0

    def test_heavy_repetition_from_half_dollar_grid(self, nyt_sample):
        on_grid = np.isclose(nyt_sample * 2, np.round(nyt_sample * 2))
        assert on_grid.mean() > 0.3


class TestPowerConsumption:
    def test_range_matches_uci_data(self, power_sample):
        assert power_sample.min() >= POWER_MIN
        assert power_sample.max() <= POWER_MAX

    def test_bimodal_humps(self, power_sample):
        # Sec 4.5.4: humps near 0.3 kW (idle) and ~1.5 kW (active),
        # with a valley between them.
        hist, edges = np.histogram(power_sample, bins=50, range=(0, 3))
        centres = (edges[:-1] + edges[1:]) / 2
        idle_peak = hist[(centres > 0.1) & (centres < 0.6)].max()
        active_peak = hist[(centres > 1.0) & (centres < 2.0)].max()
        valley = hist[(centres > 0.7) & (centres < 1.0)].min()
        assert valley < idle_peak / 2
        assert valley < active_peak

    def test_mid_quantiles_between_humps(self, power_sample):
        # The paper: Moments Sketch errs in the mid quantiles because
        # they fall between the humps.
        q50, q75 = np.quantile(power_sample, [0.5, 0.75])
        assert 0.3 < q50 < 1.5
        assert q50 < q75

    def test_three_decimal_quantisation(self, power_sample):
        assert np.allclose(power_sample, np.round(power_sample, 3))

    def test_heavy_repetition(self, power_sample):
        _values, counts = np.unique(power_sample, return_counts=True)
        # Quantisation makes single values repeat thousands of times.
        assert counts.max() > 500

    def test_moderate_positive_kurtosis(self, power_sample):
        k = excess_kurtosis(power_sample)
        assert 1.0 < k < 60.0
