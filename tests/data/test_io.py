"""Tests for event-batch persistence."""

import numpy as np
import pytest

from repro.data import (
    DriftingPareto,
    generate_stream,
    load_batch,
    save_batch,
)
from repro.errors import InvalidValueError


@pytest.fixture
def batch(rng):
    return generate_stream(
        DriftingPareto(), 500.0, rng, rate_per_sec=2_000,
        delay_mean_ms=100.0,
    )


class TestNpzRoundTrip:
    def test_lossless(self, batch, tmp_path):
        path = save_batch(batch, tmp_path / "stream.npz")
        loaded = load_batch(path)
        assert np.array_equal(loaded.values, batch.values)
        assert np.array_equal(loaded.event_times, batch.event_times)
        assert np.array_equal(loaded.arrival_times, batch.arrival_times)

    def test_replay_produces_identical_windows(self, batch, tmp_path):
        from repro.core import DDSketch
        from repro.streaming import SketchAggregator, run_tumbling_batch

        loaded = load_batch(save_batch(batch, tmp_path / "s.npz"))
        agg = SketchAggregator(DDSketch, quantiles=(0.5,))
        original = run_tumbling_batch(batch, 100.0, agg)
        replayed = run_tumbling_batch(loaded, 100.0, agg)
        assert [r.result for r in original.results] == (
            [r.result for r in replayed.results]
        )
        assert original.dropped_late == replayed.dropped_late

    def test_creates_parent_dirs(self, batch, tmp_path):
        path = save_batch(batch, tmp_path / "a" / "b" / "c.npz")
        assert path.exists()

    def test_rejects_foreign_archive(self, tmp_path):
        np.savez(tmp_path / "other.npz", stuff=np.zeros(3))
        with pytest.raises(InvalidValueError):
            load_batch(tmp_path / "other.npz")


class TestCsvRoundTrip:
    def test_lossless_via_repr(self, batch, tmp_path):
        path = save_batch(batch, tmp_path / "stream.csv")
        loaded = load_batch(path)
        assert np.array_equal(loaded.values, batch.values)
        assert np.array_equal(loaded.arrival_times, batch.arrival_times)

    def test_header_checked(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(InvalidValueError):
            load_batch(bad)

    def test_malformed_row(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("value,event_time_ms,arrival_time_ms\n1,2\n")
        with pytest.raises(InvalidValueError):
            load_batch(bad)


class TestErrors:
    def test_unknown_extension(self, batch, tmp_path):
        with pytest.raises(InvalidValueError):
            save_batch(batch, tmp_path / "stream.parquet")
        with pytest.raises(InvalidValueError):
            load_batch(tmp_path / "stream.parquet")

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidValueError):
            load_batch(tmp_path / "nope.npz")
