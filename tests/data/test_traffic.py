"""Tests for the seeded traffic-shape generators (repro.data.traffic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.traffic import (
    DiurnalCurve,
    FlashCrowd,
    LatencyValues,
    ZipfTenants,
)
from repro.errors import InvalidValueError


class TestZipfTenants:
    def test_shares_sum_to_one_and_decrease(self):
        tenants = ZipfTenants(n_tenants=6, exponent=1.2)
        shares = [tenants.share(i) for i in range(6)]
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)

    def test_names_are_stable_and_prefixed(self):
        tenants = ZipfTenants(n_tenants=3, prefix="lat.tenant")
        assert tenants.names == (
            "lat.tenant00",
            "lat.tenant01",
            "lat.tenant02",
        )
        assert tenants.name_of(2) == "lat.tenant02"

    def test_pick_is_seed_deterministic(self):
        tenants = ZipfTenants(n_tenants=8)
        a = tenants.pick(200, np.random.default_rng(7))
        b = tenants.pick(200, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_pick_skews_toward_rank_zero(self):
        tenants = ZipfTenants(n_tenants=8, exponent=1.1)
        picks = tenants.pick(2_000, np.random.default_rng(11))
        counts = np.bincount(picks, minlength=8)
        assert counts[0] == counts.max()
        assert counts[0] > counts[-1]

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            ZipfTenants(n_tenants=0)
        with pytest.raises(InvalidValueError):
            ZipfTenants(exponent=-0.5)


class TestDiurnalCurve:
    def test_peak_and_trough(self):
        curve = DiurnalCurve(base=2.0, peak=8.0, period=24, peak_tick=18)
        assert curve.level_at(18) == pytest.approx(8.0)
        assert curve.level_at(6) == pytest.approx(2.0)

    def test_periodicity(self):
        curve = DiurnalCurve(base=1.0, peak=5.0, period=12, peak_tick=3)
        for tick in range(12):
            assert curve.level_at(tick) == pytest.approx(
                curve.level_at(tick + 12)
            )

    def test_batches_are_rounded_levels(self):
        curve = DiurnalCurve(base=2.0, peak=8.0, period=24, peak_tick=0)
        assert curve.batches_at(0) == 8
        assert curve.batches_at(12) == 2

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            DiurnalCurve(base=5.0, peak=2.0)
        with pytest.raises(InvalidValueError):
            DiurnalCurve(period=0)


class TestFlashCrowd:
    def test_spike_window_multiplies_base_curve(self):
        flat = DiurnalCurve(base=4.0, peak=4.0, period=24, peak_tick=0)
        crowd = FlashCrowd(flat, at=3, length=2, multiplier=5.0)
        assert not crowd.in_spike(2)
        assert crowd.in_spike(3)
        assert crowd.in_spike(4)
        assert not crowd.in_spike(5)
        assert crowd.level_at(3) == pytest.approx(20.0)
        assert crowd.level_at(5) == pytest.approx(4.0)
        assert crowd.batches_at(4) == 20

    def test_crowds_stack(self):
        flat = DiurnalCurve(base=2.0, peak=2.0, period=24, peak_tick=0)
        inner = FlashCrowd(flat, at=1, length=3, multiplier=2.0)
        outer = FlashCrowd(inner, at=2, length=1, multiplier=3.0)
        assert outer.level_at(1) == pytest.approx(4.0)
        assert outer.level_at(2) == pytest.approx(12.0)
        assert outer.level_at(3) == pytest.approx(4.0)

    def test_validation(self):
        flat = DiurnalCurve(base=2.0, peak=2.0, period=24, peak_tick=0)
        with pytest.raises(InvalidValueError):
            FlashCrowd(flat, at=-1, length=1, multiplier=2.0)
        with pytest.raises(InvalidValueError):
            FlashCrowd(flat, at=0, length=0, multiplier=2.0)
        with pytest.raises(InvalidValueError):
            FlashCrowd(flat, at=0, length=1, multiplier=0.0)


class TestLatencyValues:
    def test_samples_positive_and_deterministic(self):
        values = LatencyValues()
        a = values.sample(500, np.random.default_rng(3))
        b = values.sample(500, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert (a > 0).all()

    def test_scale_multiplies(self):
        values = LatencyValues()
        base = values.sample(100, np.random.default_rng(5))
        scaled = values.sample(100, np.random.default_rng(5), scale=3.0)
        assert np.allclose(scaled, base * 3.0)

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            LatencyValues(sigma=-1.0)
        values = LatencyValues()
        with pytest.raises(InvalidValueError):
            values.sample(0, np.random.default_rng(1))
        with pytest.raises(InvalidValueError):
            values.sample(10, np.random.default_rng(1), scale=0.0)
