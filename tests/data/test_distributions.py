"""Unit tests for the synthetic distributions."""

import numpy as np
import pytest

from repro.data.distributions import (
    Binomial,
    Concatenation,
    DriftingPareto,
    DriftingUniform,
    Exponential,
    Gamma,
    Lognormal,
    Normal,
    Pareto,
    Uniform,
    Zipf,
    adaptability_workload,
)
from repro.errors import InvalidValueError


class TestPlainDistributions:
    def test_pareto_support(self, rng):
        samples = Pareto(shape=1.0, scale=2.0).sample(10_000, rng)
        assert (samples >= 2.0).all()

    def test_pareto_heavy_tail(self, rng):
        samples = Pareto(1.0, 1.0).sample(100_000, rng)
        # Pareto(1): the max dwarfs the median by orders of magnitude.
        assert samples.max() / np.median(samples) > 100

    def test_uniform_bounds(self, rng):
        samples = Uniform(30.0, 100.0).sample(10_000, rng)
        assert samples.min() >= 30.0
        assert samples.max() < 100.0

    def test_binomial_support(self, rng):
        samples = Binomial(100, 0.2).sample(10_000, rng)
        assert samples.min() >= 0
        assert samples.max() <= 100
        assert samples.mean() == pytest.approx(20.0, rel=0.05)
        assert np.allclose(samples, np.round(samples))

    def test_zipf_support_and_skew(self, rng):
        samples = Zipf(20, 0.6).sample(50_000, rng)
        assert set(np.unique(samples)) <= set(range(1, 21))
        counts = np.bincount(samples.astype(int), minlength=21)
        assert counts[1] > counts[20]  # rank 1 most frequent

    def test_zipf_zero_exponent_is_uniform(self, rng):
        samples = Zipf(10, 0.0).sample(50_000, rng)
        counts = np.bincount(samples.astype(int), minlength=11)[1:]
        assert counts.std() / counts.mean() < 0.1

    def test_exponential_mean(self, rng):
        samples = Exponential(150.0).sample(50_000, rng)
        assert samples.mean() == pytest.approx(150.0, rel=0.05)

    def test_gamma_normal_lognormal_shapes(self, rng):
        assert Gamma(2.0, 10.0).sample(100, rng).min() > 0
        normal = Normal(50.0, 10.0).sample(50_000, rng)
        assert normal.mean() == pytest.approx(50.0, abs=0.5)
        assert Lognormal(0.0, 1.0).sample(100, rng).min() > 0

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            Pareto(shape=-1.0)
        with pytest.raises(InvalidValueError):
            Uniform(10.0, 5.0)
        with pytest.raises(InvalidValueError):
            Binomial(0, 0.5)
        with pytest.raises(InvalidValueError):
            Zipf(0)
        with pytest.raises(InvalidValueError):
            Exponential(0.0)
        with pytest.raises(InvalidValueError):
            Normal(0.0, 0.0)

    def test_names_are_stable(self):
        assert Pareto(1.0, 1.0).name == "pareto(a=1,xm=1)"
        assert Uniform(30, 100).name == "uniform(30,100)"


class TestDriftingDistributions:
    def test_drifting_pareto_positive(self, rng):
        samples = DriftingPareto().sample(100_000, rng)
        assert (samples > 0).all()

    def test_drifting_pareto_resembles_pareto(self, rng):
        # Kurtosis should be enormous, like the plain Pareto.
        from scipy import stats
        samples = DriftingPareto().sample(200_000, rng)
        assert stats.kurtosis(samples) > 100

    def test_redraw_blocks_share_parameters(self, rng):
        dist = DriftingPareto(redraw_every=1_000)
        samples = dist.sample(10_000, rng)
        assert samples.size == 10_000

    def test_drifting_uniform_range(self, rng):
        samples = DriftingUniform().sample(100_000, rng)
        # Minimum drifts as N(1000, 100); width 1000.
        assert samples.min() > 400.0
        assert samples.max() < 2_700.0

    def test_drifting_uniform_low_kurtosis(self, rng):
        from scipy import stats
        samples = DriftingUniform().sample(200_000, rng)
        assert abs(stats.kurtosis(samples)) < 1.3

    def test_rejects_bad_redraw(self):
        with pytest.raises(InvalidValueError):
            DriftingPareto(redraw_every=0)
        with pytest.raises(InvalidValueError):
            DriftingUniform(width=-1.0)


class TestConcatenation:
    def test_pieces_in_order(self, rng):
        workload = Concatenation([
            (Uniform(0.0, 1.0), 100),
            (Uniform(10.0, 11.0), 100),
        ])
        samples = workload.sample(200, rng)
        assert samples[:100].max() < 1.0
        assert samples[100:].min() >= 10.0

    def test_split_requests_continue_where_left_off(self, rng):
        workload = Concatenation([
            (Uniform(0.0, 1.0), 100),
            (Uniform(10.0, 11.0), 100),
        ])
        first = workload.sample(150, rng)
        second = workload.sample(50, rng)
        assert first[:100].max() < 1.0
        assert first[100:].min() >= 10.0
        assert second.min() >= 10.0

    def test_wraps_around(self, rng):
        workload = Concatenation([(Uniform(0.0, 1.0), 10)])
        samples = workload.sample(25, rng)
        assert samples.size == 25

    def test_reset(self, rng):
        workload = Concatenation([
            (Uniform(0.0, 1.0), 10),
            (Uniform(10.0, 11.0), 10),
        ])
        workload.sample(15, rng)
        workload.reset()
        assert workload.sample(10, rng).max() < 1.0

    def test_validation(self):
        with pytest.raises(InvalidValueError):
            Concatenation([])
        with pytest.raises(InvalidValueError):
            Concatenation([(Uniform(0, 1), 0)])


class TestAdaptabilityWorkload:
    def test_paper_shape(self, rng):
        # Sec 4.5.7: binomial(30, 0.4) then uniform(30, 100); the 0.5
        # quantile sits at the regime boundary.
        workload = adaptability_workload(10_000, 10_000)
        samples = workload.sample(20_000, rng)
        first, second = samples[:10_000], samples[10_000:]
        assert first.max() <= 30
        assert second.min() >= 30
        median = np.median(samples)
        # The boundary: largest binomial values ~ max 30, smallest
        # uniform values ~ 30.
        assert 12 <= median <= 35
