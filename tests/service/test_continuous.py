"""Tests for the continuous-query engine and its wire-level ops."""

from __future__ import annotations

import pytest

from repro.errors import InvalidValueError
from repro.obs.telemetry import Telemetry
from repro.service import (
    ContinuousQueryEngine,
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)


def make_registry(start_ms: float = 10_000.0, partition_ms: float = 1_000.0):
    clock = ManualClock(start_ms)
    return MetricRegistry(clock=clock, partition_ms=partition_ms), clock


class TestRegistration:
    def test_ids_are_sequential_and_stable(self):
        registry, _clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        first = engine.register(
            {"kind": "threshold", "metric": "lat",
             "threshold": 1.0, "window_ms": 1_000.0}
        )
        second = engine.register(
            {"kind": "topk", "prefix": "lat", "window_ms": 1_000.0}
        )
        assert first == "cq-0001"
        assert second == "cq-0002"
        assert [spec["id"] for spec in engine.specs()] == [first, second]
        assert len(engine) == 2

    def test_normalisation_fills_defaults(self):
        registry, _clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "threshold", "metric": "lat",
             "threshold": 5.0, "window_ms": 2_000.0}
        )
        spec = engine.specs()[0]
        assert spec["q"] == 0.99
        assert spec["op"] == "gt"
        assert spec["tags"] is None

    def test_unregister(self):
        registry, _clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        query_id = engine.register(
            {"kind": "topk", "prefix": "lat", "window_ms": 1_000.0}
        )
        assert engine.unregister(query_id)
        assert not engine.unregister(query_id)
        assert len(engine) == 0

    @pytest.mark.parametrize(
        "spec",
        [
            {"kind": "nope"},
            {"kind": "threshold", "metric": "lat", "window_ms": 1.0},
            {"kind": "threshold", "metric": "lat", "threshold": 1.0,
             "window_ms": -5.0},
            {"kind": "threshold", "metric": "lat", "threshold": 1.0,
             "window_ms": 1.0, "op": "between"},
            {"kind": "threshold", "metric": "lat", "threshold": 1.0,
             "window_ms": 1.0, "q": 1.5},
            {"kind": "burn_rate", "metric": "lat", "objective_ms": 1.0,
             "fast_ms": 10.0, "slow_ms": 5.0},
            {"kind": "burn_rate", "metric": "lat", "objective_ms": 1.0,
             "fast_ms": 5.0, "slow_ms": 10.0, "target": 1.0},
            {"kind": "topk", "prefix": "lat", "window_ms": 1.0, "k": 0},
            {"kind": "topk", "prefix": "", "window_ms": 1.0},
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        registry, _clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        with pytest.raises(InvalidValueError):
            engine.register(spec)


class TestThreshold:
    def test_fires_only_when_crossed(self):
        registry, clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "threshold", "metric": "lat", "q": 0.5,
             "threshold": 100.0, "window_ms": 2_000.0}
        )
        registry.record("lat", [50.0] * 20, clock.now_ms())
        clock.advance(1_000.0)
        (ok,) = engine.evaluate()
        assert ok["status"] == "ok"
        assert ok["observed"] < 100.0
        registry.record("lat", [500.0] * 200, clock.now_ms())
        clock.advance(1_000.0)
        (firing,) = engine.evaluate()
        assert firing["status"] == "firing"
        assert firing["observed"] > 100.0

    def test_lt_direction_and_window_expiry(self):
        registry, clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "threshold", "metric": "lat", "q": 0.5, "op": "lt",
             "threshold": 100.0, "window_ms": 1_000.0}
        )
        registry.record("lat", [10.0] * 20, clock.now_ms())
        clock.advance(500.0)
        (firing,) = engine.evaluate()
        assert firing["status"] == "firing"
        # Move the window past the data: no_data, not a stale alert.
        clock.advance(5_000.0)
        (stale,) = engine.evaluate()
        assert stale["status"] == "no_data"
        assert stale["observed"] is None

    def test_missing_store_is_no_data(self):
        registry, _clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "threshold", "metric": "ghost",
             "threshold": 1.0, "window_ms": 1_000.0}
        )
        (result,) = engine.evaluate()
        assert result["status"] == "no_data"


class TestBurnRate:
    def make_engine(self):
        registry, clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "burn_rate", "metric": "lat", "objective_ms": 100.0,
             "target": 0.9, "fast_ms": 1_000.0, "slow_ms": 3_000.0,
             "factor": 2.0}
        )
        return registry, clock, engine

    def test_sustained_burn_fires(self):
        registry, clock, engine = self.make_engine()
        # Every window: half the requests breach a 90% objective
        # => burn rate 5.0 >= factor in both windows.
        for _ in range(3):
            registry.record(
                "lat", [50.0] * 10 + [500.0] * 10, clock.now_ms()
            )
            clock.advance(1_000.0)
        (result,) = engine.evaluate()
        assert result["status"] == "firing"
        assert result["fast_burn"] == pytest.approx(5.0)
        assert result["slow_burn"] == pytest.approx(5.0)

    def test_recovered_incident_does_not_fire(self):
        registry, clock, engine = self.make_engine()
        # Old breach, then two clean windows: slow window still burns,
        # fast window does not => no alert.
        registry.record("lat", [500.0] * 10, clock.now_ms())
        clock.advance(1_000.0)
        for _ in range(2):
            registry.record("lat", [50.0] * 10, clock.now_ms())
            clock.advance(1_000.0)
        (result,) = engine.evaluate()
        assert result["status"] == "ok"
        assert result["fast_burn"] < 2.0 <= result["slow_burn"]


class TestTopK:
    def test_ranks_worst_tail_first(self):
        registry, clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "topk", "prefix": "lat.tenant", "q": 0.5, "k": 2,
             "window_ms": 2_000.0}
        )
        now = clock.now_ms()
        registry.record("lat.tenant00", [10.0] * 10, now)
        registry.record("lat.tenant01", [900.0] * 10, now)
        registry.record("lat.tenant02", [300.0] * 10, now)
        registry.record("other.series", [9_999.0] * 10, now)
        clock.advance(1_000.0)
        (result,) = engine.evaluate()
        tenants = result["tenants"]
        assert [entry["metric"] for entry in tenants] == [
            "lat.tenant01", "lat.tenant02",
        ]
        assert result["status"] == "ok"

    def test_empty_prefix_match_is_no_data(self):
        registry, _clock = make_registry()
        engine = ContinuousQueryEngine(registry)
        engine.register(
            {"kind": "topk", "prefix": "ghost", "window_ms": 1_000.0}
        )
        (result,) = engine.evaluate()
        assert result["status"] == "no_data"
        assert result["tenants"] == []


class TestHistoryAndTelemetry:
    def test_results_retained_oldest_first_and_bounded(self):
        registry, clock = make_registry()
        engine = ContinuousQueryEngine(registry, max_results=4)
        engine.register(
            {"kind": "topk", "prefix": "lat", "window_ms": 1_000.0}
        )
        for _ in range(6):
            engine.evaluate()
            clock.advance(100.0)
        history = engine.results()
        assert len(history) == 4
        windows = [entry["window"][1] for entry in history]
        assert windows == sorted(windows)
        assert len(engine.results(limit=2)) == 2
        with pytest.raises(InvalidValueError):
            engine.results(limit=0)

    def test_counters(self):
        registry, clock = make_registry()
        telemetry = Telemetry(clock=clock)
        engine = ContinuousQueryEngine(registry, telemetry=telemetry)
        engine.register(
            {"kind": "threshold", "metric": "lat", "q": 0.5,
             "threshold": 1.0, "window_ms": 2_000.0}
        )
        registry.record("lat", [100.0] * 5, clock.now_ms())
        clock.advance(100.0)
        engine.evaluate()
        engine.evaluate()
        counters = telemetry.snapshot()["counters"]
        assert counters["cq.evaluations"] == 2
        assert counters["cq.alerts"] == 2


class TestWireOps:
    """The cq_* protocol verbs, exercised over a real TCP connection."""

    @pytest.fixture()
    def service(self):
        clock = ManualClock(10_000.0)
        registry = MetricRegistry(clock=clock, partition_ms=1_000.0)
        server = QuantileServer(registry=registry, ingest_queue_size=32)
        server.start()
        host, port = server.address
        client = QuantileClient(host, port, clock=clock)
        try:
            yield client, clock
        finally:
            client.close()
            server.stop()

    def test_register_eval_results_roundtrip(self, service):
        client, clock = service
        query_id = client.cq_register(
            {"kind": "threshold", "metric": "lat", "q": 0.5,
             "threshold": 100.0, "window_ms": 2_000.0}
        )
        assert query_id == "cq-0001"
        client.ingest("lat", [500.0] * 50)
        client.flush()
        clock.advance(1_000.0)
        (result,) = client.cq_eval()
        assert result["status"] == "firing"
        listed = client.cq_list()
        assert [spec["id"] for spec in listed] == [query_id]
        history = client.cq_results()
        assert len(history) == 1
        assert client.cq_results(limit=1) == history
        assert client.cq_unregister(query_id)
        assert not client.cq_unregister(query_id)
        assert client.cq_list() == []

    def test_bad_spec_is_protocol_error(self, service):
        from repro.errors import ServiceError

        client, _clock = service
        with pytest.raises(ServiceError):
            client.cq_register({"kind": "nope"})
