"""Tests for the injectable service clocks."""

import pytest

from repro.errors import InvalidValueError
from repro.service.clock import ManualClock, SystemClock


class TestManualClock:
    def test_starts_where_told(self):
        assert ManualClock(1_234.5).now_ms() == 1_234.5

    def test_advance(self):
        clock = ManualClock(100.0)
        assert clock.advance(50.0) == 150.0
        assert clock.now_ms() == 150.0

    def test_set_time(self):
        clock = ManualClock()
        assert clock.set_time(10.0) == 10.0
        assert clock.now_ms() == 10.0

    def test_never_moves_backwards(self):
        clock = ManualClock(100.0)
        with pytest.raises(InvalidValueError):
            clock.advance(-1.0)
        with pytest.raises(InvalidValueError):
            clock.set_time(99.0)

    def test_does_not_tick_on_its_own(self):
        clock = ManualClock(7.0)
        for _ in range(100):
            assert clock.now_ms() == 7.0


class TestSystemClock:
    def test_tracks_wall_time(self):
        clock = SystemClock()
        first = clock.now_ms()
        second = clock.now_ms()
        assert second >= first
        # Epoch milliseconds, not seconds: any date past 2001.
        assert first > 1e12
