"""Client retry/backoff on the injectable clock: sleep-free and seeded.

The failover suite leans on two properties pinned here: a
:class:`~repro.service.clock.ManualClock` makes whole backoff
schedules run without sleeping (the clock *advances* instead), and the
jitter draws come from a seeded generator so retry schedules are a
pure function of ``(backoff_ms, jitter, jitter_seed)``.
"""

from __future__ import annotations

import socket

import pytest

from repro.errors import ServiceUnavailableError
from repro.obs.telemetry import Telemetry
from repro.service import ManualClock, QuantileClient


@pytest.fixture()
def dead_port():
    """A loopback port with nothing listening (connects are refused)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        yield probe.getsockname()[1]


def exhaust(client):
    with pytest.raises(ServiceUnavailableError):
        client.call({"op": "ping"})


class TestManualClockBackoff:
    def test_backoff_advances_the_clock_instead_of_sleeping(
        self, dead_port
    ):
        clock = ManualClock(0.0)
        client = QuantileClient(
            "127.0.0.1",
            dead_port,
            retries=3,
            backoff_ms=100.0,
            clock=clock,
        )
        exhaust(client)
        # Waits 100, 200, 400 between the four attempts — and the test
        # itself finishes without any real sleeping.
        assert clock.now_ms() == 700.0

    def test_zero_retries_never_touches_the_clock(self, dead_port):
        clock = ManualClock(0.0)
        client = QuantileClient(
            "127.0.0.1", dead_port, retries=0, clock=clock
        )
        exhaust(client)
        assert clock.now_ms() == 0.0

    def test_retries_are_counted_in_telemetry(self, dead_port):
        clock = ManualClock(0.0)
        telemetry = Telemetry(clock=clock)
        client = QuantileClient(
            "127.0.0.1",
            dead_port,
            retries=2,
            backoff_ms=10.0,
            clock=clock,
            telemetry=telemetry,
        )
        exhaust(client)
        snapshot = telemetry.snapshot()["counters"]
        assert snapshot["client.transport_retries"] == 2
        assert snapshot["client.backoff_total_ms"] == 30  # 10 + 20


class TestSeededJitter:
    def run_schedule(self, dead_port, seed):
        clock = ManualClock(0.0)
        client = QuantileClient(
            "127.0.0.1",
            dead_port,
            retries=4,
            backoff_ms=50.0,
            jitter=0.5,
            jitter_seed=seed,
            clock=clock,
        )
        exhaust(client)
        return clock.now_ms()

    def test_same_seed_same_schedule(self, dead_port):
        assert self.run_schedule(dead_port, 7) == self.run_schedule(
            dead_port, 7
        )

    def test_distinct_seeds_desynchronise(self, dead_port):
        assert self.run_schedule(dead_port, 7) != self.run_schedule(
            dead_port, 8
        )

    def test_jitter_only_stretches_the_wait(self, dead_port):
        base = 50.0 + 100.0 + 200.0 + 400.0
        total = self.run_schedule(dead_port, 7)
        assert base <= total <= base * 1.5
