"""Ingest-while-query tests for the service store.

Two regimes, per the service PR checklist:

* a fast, fully deterministic interleaving driven by an injected
  clock (single-threaded, so it can assert exact counters), and
* threaded writers against concurrent readers — a short variant in
  tier 1 and a ``slow``-marked soak — where readers assert the safety
  invariants: ``events_recorded`` is monotone and every quantile lies
  inside the ingested value range.
"""

import threading

import numpy as np
import pytest

from repro.core import DDSketch
from repro.errors import EmptySketchError
from repro.parallel import ShardedSketch
from repro.service import ManualClock, MetricRegistry, TimePartitionedStore

LO, HI = 1.0, 1_000.0

# Ingest-while-query runs under the runtime lock sanitizer: store,
# registry and shard locks are wrapped and the acquisition-order graph
# is asserted acyclic at teardown (DESIGN §13).
pytestmark = pytest.mark.usefixtures("lock_sanitizer")


class TestDeterministicInterleaving:
    """Fast variant: exact assertions under an injected clock."""

    def test_query_between_every_batch(self):
        clock = ManualClock(0.0)
        store = TimePartitionedStore(
            lambda: DDSketch(alpha=0.01),
            clock=clock,
            partition_ms=1_000.0,
            fine_partitions=50,
        )
        rng = np.random.default_rng(11)
        last_recorded = 0
        for step in range(40):
            clock.advance(500.0)
            store.record_batch(
                rng.uniform(LO, HI, 25), timestamp_ms=clock.now_ms()
            )
            # Queries interleave with ingest on an exact schedule.
            assert store.events_recorded == last_recorded + 25
            last_recorded = store.events_recorded
            assert LO <= store.quantile(0.5) <= HI
            assert LO <= store.quantile(0.99) <= HI
            assert store.count() <= store.events_recorded

    def test_interleaving_is_reproducible(self):
        def run():
            clock = ManualClock(0.0)
            store = TimePartitionedStore(
                lambda: DDSketch(alpha=0.01),
                clock=clock,
                partition_ms=1_000.0,
                fine_partitions=10,
                coarse_factor=4,
                coarse_partitions=5,
            )
            rng = np.random.default_rng(3)
            answers = []
            for step in range(60):
                clock.advance(700.0)
                store.record_batch(
                    rng.uniform(LO, HI, 20), timestamp_ms=clock.now_ms()
                )
                answers.append(
                    (store.quantile(0.9), store.count(),
                     store.events_expired)
                )
            return answers

        assert run() == run()


def hammer(store, n_writers, per_writer, batch, stop_event=None):
    """Start *n_writers* threads writing uniform batches; return them."""

    def write(seed):
        rng = np.random.default_rng(seed)
        for _ in range(per_writer):
            store.record_batch(rng.uniform(LO, HI, batch))
        if stop_event is not None:
            stop_event.set()

    threads = [
        threading.Thread(target=write, args=(seed,), daemon=True)
        for seed in range(n_writers)
    ]
    for thread in threads:
        thread.start()
    return threads


def read_invariants(store, errors, stop_event):
    last = 0
    while not stop_event.is_set():
        recorded = store.events_recorded
        if recorded < last:
            errors.append(
                f"events_recorded went backwards: {last} -> {recorded}"
            )
            return
        last = recorded
        try:
            for q in (0.5, 0.99):
                estimate = store.quantile(q)
                if not LO <= estimate <= HI:
                    errors.append(
                        f"q{q} = {estimate} outside [{LO}, {HI}]"
                    )
                    return
        except EmptySketchError:
            continue  # writers may not have landed a value yet


def run_soak(n_writers, per_writer, batch, n_readers):
    clock = ManualClock(0.0)
    store = TimePartitionedStore(
        lambda: ShardedSketch(lambda: DDSketch(alpha=0.01), n_shards=4),
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=100_000,
    )
    stop_event = threading.Event()
    errors = []
    readers = [
        threading.Thread(
            target=read_invariants,
            args=(store, errors, stop_event),
            daemon=True,
        )
        for _ in range(n_readers)
    ]
    for reader in readers:
        reader.start()
    writers = hammer(store, n_writers, per_writer, batch, stop_event)
    for writer in writers:
        writer.join(timeout=60.0)
    stop_event.set()
    for reader in readers:
        reader.join(timeout=10.0)
    assert errors == [], errors
    expected = n_writers * per_writer * batch
    assert store.events_recorded == expected
    assert store.count() == expected
    assert LO <= store.quantile(0.5) <= HI
    return store


class TestThreadedIngestWhileQuery:
    def test_short_threaded_run(self):
        """Tier-1-sized version of the soak: seconds, not minutes."""
        run_soak(n_writers=4, per_writer=30, batch=50, n_readers=2)

    def test_registry_concurrent_multi_metric(self):
        registry = MetricRegistry(
            sketch_factory=lambda: DDSketch(alpha=0.01),
            clock=ManualClock(0.0),
            fine_partitions=100_000,
            hot_metrics=("hot",),
            n_shards=4,
        )

        def write(metric, seed):
            rng = np.random.default_rng(seed)
            for _ in range(25):
                registry.record(metric, rng.uniform(LO, HI, 40))

        threads = [
            threading.Thread(target=write, args=(metric, seed), daemon=True)
            for seed, metric in enumerate(
                ("hot", "hot", "cold.a", "cold.b")
            )
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert registry.events_recorded == 4 * 25 * 40
        assert registry.get("hot").count() == 2 * 25 * 40
        assert LO <= registry.get("hot").quantile(0.9) <= HI


@pytest.mark.slow
class TestSoak:
    def test_sustained_ingest_while_query(self):
        """N writers, concurrent readers, ~10^6 values end to end."""
        store = run_soak(
            n_writers=8, per_writer=250, batch=500, n_readers=4
        )
        assert store.events_recorded == 1_000_000
