"""Tests for the time-partitioned sketch store."""

import numpy as np
import pytest

from repro.core import DDSketch, paper_config
from repro.errors import (
    EmptySketchError,
    InvalidValueError,
    SerializationError,
)
from repro.parallel import ShardedSketch
from repro.service import ManualClock, TimePartitionedStore

QS = (0.05, 0.25, 0.5, 0.75, 0.9, 0.99)


def dd_factory():
    return DDSketch(alpha=0.01)


def make(clock=None, **kwargs):
    kwargs.setdefault("partition_ms", 1_000.0)
    kwargs.setdefault("fine_partitions", 10)
    kwargs.setdefault("coarse_factor", 4)
    kwargs.setdefault("coarse_partitions", 5)
    return TimePartitionedStore(
        dd_factory, clock=clock or ManualClock(), **kwargs
    )


class TestValidation:
    def test_bad_geometry_rejected(self):
        with pytest.raises(InvalidValueError):
            TimePartitionedStore(dd_factory, partition_ms=0.0)
        with pytest.raises(InvalidValueError):
            TimePartitionedStore(dd_factory, fine_partitions=0)
        with pytest.raises(InvalidValueError):
            TimePartitionedStore(dd_factory, coarse_factor=0)

    def test_bad_range_rejected(self):
        store = make()
        store.record(1.0)
        with pytest.raises(InvalidValueError):
            store.quantile(0.5, t0=2_000.0, t1=1_000.0)
        with pytest.raises(InvalidValueError):
            store.count(t0=5.0, t1=5.0)

    def test_empty_range_raises(self):
        clock = ManualClock(0.0)
        store = make(clock)
        with pytest.raises(EmptySketchError):
            store.quantile(0.5)
        store.record(1.0, timestamp_ms=0.0)
        with pytest.raises(EmptySketchError):
            store.quantile(0.5, t0=5_000.0, t1=6_000.0)


class TestBucketing:
    def test_values_land_in_their_partition(self):
        clock = ManualClock(0.0)
        store = make(clock)
        store.record(1.0, timestamp_ms=100.0)
        store.record(2.0, timestamp_ms=1_100.0)
        store.record(3.0, timestamp_ms=2_100.0)
        assert store.num_fine_partitions == 3
        assert store.count(t0=0.0, t1=1_000.0) == 1
        assert store.count(t0=0.0, t1=2_000.0) == 2
        assert store.count() == 3

    def test_range_is_partition_quantised(self):
        clock = ManualClock(0.0)
        store = make(clock)
        store.record(1.0, timestamp_ms=100.0)
        # A range overlapping any part of a partition sees the whole
        # partition.
        assert store.count(t0=900.0, t1=950.0) == 1

    def test_default_timestamp_is_clock_now(self):
        clock = ManualClock(4_200.0)
        store = make(clock)
        store.record(1.0)
        assert store.count(t0=4_000.0, t1=5_000.0) == 1

    def test_late_values_dropped_and_counted(self):
        clock = ManualClock(100_000.0)
        store = make(clock)  # fine horizon 10 s
        accepted = store.record_batch([1.0, 2.0], timestamp_ms=100.0)
        assert accepted == 0
        assert store.dropped_late == 2
        assert store.events_recorded == 0

    def test_events_recorded_is_monotone(self, rng):
        clock = ManualClock(0.0)
        store = make(clock)
        store.record_batch(rng.uniform(1, 2, 100), timestamp_ms=0.0)
        assert store.events_recorded == 100
        # Expiring data shrinks count() but never events_recorded.
        clock.advance(1_000_000.0)
        store.compact()
        assert store.events_recorded == 100
        assert store.events_expired == 100


class TestRangeQueryExactness:
    """Acceptance: merged time buckets == one un-partitioned sketch."""

    def _fill(self, store, reference, rng, t_lo, t_hi):
        for t in range(t_lo, t_hi):
            batch = rng.lognormal(4.6, 0.5, 50)
            store.record_batch(batch, timestamp_ms=t * 1_000.0 + 10.0)
            if reference is not None:
                reference.update_batch(batch)

    def test_full_range_matches_unpartitioned(self, rng):
        clock = ManualClock(0.0)
        store = make(clock, fine_partitions=100)
        reference = dd_factory()
        self._fill(store, reference, rng, 0, 8)
        for q in QS:
            assert store.quantile(q) == reference.quantile(q)
        assert store.count() == reference.count
        assert store.rank(100.0) == reference.rank(100.0)
        assert store.cdf(100.0) == reference.cdf(100.0)

    def test_subrange_matches_unpartitioned(self):
        clock = ManualClock(0.0)
        store = make(clock, fine_partitions=100)
        self._fill(store, None, np.random.default_rng(42), 0, 10)
        # Rebuild just seconds [3, 7) with an identical RNG stream.
        rng2 = np.random.default_rng(42)
        reference = dd_factory()
        for t in range(10):
            batch = rng2.lognormal(4.6, 0.5, 50)
            if 3 <= t < 7:
                reference.update_batch(batch)
        for q in QS:
            assert store.quantile(q, t0=3_000.0, t1=7_000.0) == (
                reference.quantile(q)
            )
        assert store.count(t0=3_000.0, t1=7_000.0) == reference.count

    def test_compacted_store_still_matches(self, rng):
        """Compaction merges, never discards, inside the horizon."""
        clock = ManualClock(0.0)
        store = make(clock)  # fine horizon 10 s, coarse 20 s
        reference = dd_factory()
        for t in range(14):
            clock.set_time(t * 1_000.0)
            batch = rng.lognormal(4.6, 0.5, 50)
            store.record_batch(batch, timestamp_ms=t * 1_000.0 + 10.0)
            reference.update_batch(batch)
        assert store.num_coarse_partitions >= 1  # compaction happened
        assert store.count() == reference.count
        for q in QS:
            assert store.quantile(q) == reference.quantile(q)


class TestMergedViewCache:
    def counting(self, clock):
        calls = []

        def factory():
            calls.append(1)
            return DDSketch(alpha=0.01)

        return calls, TimePartitionedStore(
            factory,
            clock=clock,
            partition_ms=1_000.0,
            fine_partitions=10,
        )

    def test_repeated_queries_do_not_remerge(self):
        clock = ManualClock(0.0)
        calls, store = self.counting(clock)
        for t in range(5):
            store.record(float(t + 1), timestamp_ms=t * 1_000.0)
        before = len(calls)
        first = store.quantile(0.5)
        assert len(calls) == before + 1  # one view build
        for _ in range(10):
            assert store.quantile(0.5) == first
            store.rank(3.0)
            store.cdf(3.0)
        assert len(calls) == before + 1  # all served from cache

    def test_record_invalidates_cache(self):
        clock = ManualClock(0.0)
        calls, store = self.counting(clock)
        store.record(1.0, timestamp_ms=0.0)
        store.quantile(0.5)
        built = len(calls)
        store.record(2.0, timestamp_ms=100.0)
        store.quantile(0.5)
        assert len(calls) == built + 1

    def test_different_range_rebuilds(self):
        clock = ManualClock(0.0)
        calls, store = self.counting(clock)
        store.record(1.0, timestamp_ms=0.0)
        store.record(2.0, timestamp_ms=1_500.0)
        store.quantile(0.5)
        built = len(calls)
        store.quantile(0.5, t0=0.0, t1=1_000.0)
        assert len(calls) == built + 1  # new range, new view

    def test_count_does_not_build_views(self):
        clock = ManualClock(0.0)
        calls, store = self.counting(clock)
        store.record(1.0, timestamp_ms=0.0)
        built = len(calls)
        assert store.count() == 1
        assert len(calls) == built  # count sums bucket counters


class TestRetention:
    def test_fine_compacts_into_coarse(self, rng):
        clock = ManualClock(0.0)
        store = make(clock)  # fine 10 × 1 s; coarse 5 × 4 s
        for t in range(12):
            clock.set_time(t * 1_000.0)
            store.record_batch(
                rng.uniform(1, 2, 10), timestamp_ms=t * 1_000.0
            )
        assert store.num_fine_partitions <= 10 + 1
        assert store.num_coarse_partitions >= 1
        assert store.count() == 120  # nothing lost inside the horizon

    def test_coarse_expires_entirely(self, rng):
        clock = ManualClock(0.0)
        store = make(clock)  # coarse horizon 20 s
        store.record_batch(rng.uniform(1, 2, 40), timestamp_ms=0.0)
        clock.set_time(100_000.0)
        store.compact()
        assert store.num_fine_partitions == 0
        assert store.num_coarse_partitions == 0
        assert store.events_expired == 40
        with pytest.raises(EmptySketchError):
            store.quantile(0.5)

    def test_compaction_triggered_by_ingest(self, rng):
        clock = ManualClock(0.0)
        store = make(clock)
        store.record_batch(rng.uniform(1, 2, 40), timestamp_ms=0.0)
        clock.set_time(100_000.0)
        # No explicit compact(): the next record enforces retention.
        store.record(1.0)
        assert store.events_expired == 40

    def test_memory_stays_bounded(self, rng):
        clock = ManualClock(0.0)
        store = make(clock)
        for t in range(200):
            clock.set_time(t * 1_000.0)
            store.record_batch(
                rng.uniform(1, 2, 20), timestamp_ms=t * 1_000.0
            )
        assert store.num_fine_partitions <= 10 + 1
        assert store.num_coarse_partitions <= 5 + 1


def sharded_factory():
    return ShardedSketch(dd_factory, n_shards=3)


class TestShardedPartitions:
    def test_sharded_store_answers_exactly(self, rng):
        clock = ManualClock(0.0)
        store = TimePartitionedStore(
            sharded_factory, clock=clock, fine_partitions=20
        )
        reference = dd_factory()
        for t in range(5):
            batch = rng.lognormal(4.6, 0.5, 200)
            store.record_batch(batch, timestamp_ms=t * 1_000.0)
            reference.update_batch(batch)
        assert store.count() == reference.count
        for q in QS:
            assert store.quantile(q) == reference.quantile(q)

    def test_partitions_are_sharded(self):
        clock = ManualClock(0.0)
        store = TimePartitionedStore(sharded_factory, clock=clock)
        store.record(1.0, timestamp_ms=0.0)
        assert all(
            isinstance(s, ShardedSketch) for s in store._fine.values()
        )


class TestSnapshot:
    def _filled(self, rng, factory=dd_factory):
        clock = ManualClock(0.0)
        store = TimePartitionedStore(
            factory,
            clock=clock,
            partition_ms=1_000.0,
            fine_partitions=10,
            coarse_factor=4,
            coarse_partitions=5,
        )
        for t in range(12):
            clock.set_time(t * 1_000.0)
            store.record_batch(
                rng.lognormal(4.6, 0.5, 30), timestamp_ms=t * 1_000.0
            )
        return store

    def test_round_trip_preserves_answers(self, rng):
        store = self._filled(rng)
        restored = TimePartitionedStore.restore(
            store.snapshot(), dd_factory, clock=ManualClock(11_000.0)
        )
        assert restored.count() == store.count()
        assert restored.events_recorded == store.events_recorded
        for q in QS:
            assert restored.quantile(q) == store.quantile(q)

    def test_round_trip_is_bit_identical(self, rng):
        store = self._filled(rng)
        payload = store.snapshot()
        restored = TimePartitionedStore.restore(
            payload, dd_factory, clock=ManualClock(11_000.0)
        )
        assert restored.snapshot() == payload

    def test_sharded_round_trip_is_bit_identical(self, rng):
        store = self._filled(rng, factory=sharded_factory)
        payload = store.snapshot()
        restored = TimePartitionedStore.restore(
            payload, sharded_factory, clock=ManualClock(11_000.0)
        )
        assert restored.snapshot() == payload
        assert restored.quantile(0.5) == store.quantile(0.5)

    def test_restored_store_accepts_writes(self, rng):
        store = self._filled(rng)
        restored = TimePartitionedStore.restore(
            store.snapshot(), dd_factory, clock=ManualClock(11_000.0)
        )
        before = restored.count()
        restored.record_batch([5.0, 6.0], timestamp_ms=11_000.0)
        assert restored.count() == before + 2

    def test_factory_shape_mismatch_rejected(self, rng):
        plain = self._filled(rng).snapshot()
        with pytest.raises(SerializationError):
            TimePartitionedStore.restore(plain, sharded_factory)
        sharded = self._filled(rng, factory=sharded_factory).snapshot()
        with pytest.raises(SerializationError):
            TimePartitionedStore.restore(sharded, dd_factory)

    def test_corruption_detected(self, rng):
        payload = self._filled(rng).snapshot()
        with pytest.raises(SerializationError):
            TimePartitionedStore.restore(b"XXXX" + payload[4:], dd_factory)
        with pytest.raises(SerializationError):
            TimePartitionedStore.restore(
                payload[: len(payload) // 2], dd_factory
            )
        with pytest.raises(SerializationError):
            TimePartitionedStore.restore(payload + b"\x00", dd_factory)

    def test_works_with_registry_sketches(self, rng):
        clock = ManualClock(0.0)
        store = TimePartitionedStore(
            lambda: paper_config("kll", seed=7), clock=clock
        )
        store.record_batch(rng.uniform(1, 2, 500), timestamp_ms=0.0)
        payload = store.snapshot()
        restored = TimePartitionedStore.restore(
            payload, lambda: paper_config("kll", seed=7)
        )
        assert restored.snapshot() == payload
