"""Tests for the multi-tenant metric registry."""

import pytest

from repro.core import KLLSketch
from repro.errors import InvalidValueError
from repro.parallel import ShardedSketch
from repro.service import (
    ManualClock,
    MetricKey,
    MetricRegistry,
    TimePartitionedStore,
    default_sketch_factory,
)


class TestMetricKey:
    def test_tag_order_does_not_matter(self):
        a = MetricKey.of("lat", {"region": "eu", "svc": "api"})
        b = MetricKey.of("lat", {"svc": "api", "region": "eu"})
        assert a == b
        assert hash(a) == hash(b)

    def test_no_tags_is_canonical(self):
        assert MetricKey.of("lat") == MetricKey.of("lat", {})

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidValueError):
            MetricKey.of("")

    def test_values_stringified(self):
        key = MetricKey.of("lat", {"shard": 3})
        assert key.as_dict() == {"shard": "3"}

    def test_str_rendering(self):
        key = MetricKey.of("lat", {"b": "2", "a": "1"})
        assert str(key) == "lat{a=1,b=2}"
        assert str(MetricKey.of("lat")) == "lat"


class TestStoreLifecycle:
    def make(self, **kwargs):
        kwargs.setdefault("sketch_factory", default_sketch_factory())
        kwargs.setdefault("clock", ManualClock())
        return MetricRegistry(**kwargs)

    def test_lazy_creation(self):
        registry = self.make()
        assert len(registry) == 0
        assert registry.get("lat") is None
        store = registry.store("lat")
        assert isinstance(store, TimePartitionedStore)
        assert len(registry) == 1
        assert registry.get("lat") is store

    def test_same_series_same_store(self):
        registry = self.make()
        a = registry.store("lat", {"region": "eu", "svc": "api"})
        b = registry.store("lat", {"svc": "api", "region": "eu"})
        assert a is b

    def test_distinct_tags_distinct_stores(self):
        registry = self.make()
        a = registry.store("lat", {"region": "eu"})
        b = registry.store("lat", {"region": "us"})
        c = registry.store("lat")
        assert len({id(a), id(b), id(c)}) == 3
        assert len(registry) == 3

    def test_keys_sorted(self):
        registry = self.make()
        registry.store("zz")
        registry.store("aa", {"x": "1"})
        registry.store("aa")
        assert [str(key) for key in registry.keys()] == [
            "aa",
            "aa{x=1}",
            "zz",
        ]

    def test_store_geometry_passed_through(self):
        registry = self.make(partition_ms=250.0, fine_partitions=7)
        store = registry.store("lat")
        assert store.partition_ms == 250.0
        assert store.fine_partitions == 7


class TestHotMetrics:
    def test_hot_metric_gets_sharded_partitions(self):
        registry = MetricRegistry(
            clock=ManualClock(),
            hot_metrics=("lat",),
            n_shards=3,
        )
        assert registry.is_hot("lat")
        assert not registry.is_hot("cold")
        registry.record("lat", [1.0, 2.0], timestamp_ms=0.0)
        registry.record("cold", [1.0, 2.0], timestamp_ms=0.0)
        hot = registry.get("lat")
        cold = registry.get("cold")
        assert all(
            isinstance(s, ShardedSketch) and s.n_shards == 3
            for s in hot._fine.values()
        )
        assert not any(
            isinstance(s, ShardedSketch) for s in cold._fine.values()
        )

    def test_hot_and_cold_answer_alike(self, rng):
        values = rng.lognormal(4.6, 0.5, 2_000)
        hot = MetricRegistry(
            clock=ManualClock(), hot_metrics=("m",), n_shards=4
        )
        cold = MetricRegistry(clock=ManualClock())
        hot.record("m", values, timestamp_ms=0.0)
        cold.record("m", values, timestamp_ms=0.0)
        # Same data, same-count answers; sketch estimates may differ
        # because sharding splits the insertion order.
        assert hot.get("m").count() == cold.get("m").count()
        assert hot.get("m").quantile(0.5) == pytest.approx(
            cold.get("m").quantile(0.5), rel=0.05
        )


class TestAggregates:
    def test_counters_aggregate_across_series(self):
        registry = MetricRegistry(clock=ManualClock(10_000.0))
        registry.record("a", [1.0, 2.0], timestamp_ms=10_000.0)
        registry.record("b", [3.0], timestamp_ms=10_000.0)
        registry.record("b", [4.0], timestamp_ms=-1e9)  # late: dropped
        assert registry.events_recorded == 3
        assert registry.dropped_late == 1
        assert registry.size_bytes() > 0
        assert registry.stats() == {
            "metrics": 2,
            "events_recorded": 3,
            "dropped_late": 1,
        }

    def test_custom_factory_used(self):
        registry = MetricRegistry(
            sketch_factory=lambda: KLLSketch(
                max_compactor_size=128, seed=0
            ),
            clock=ManualClock(),
        )
        registry.record("m", [1.0], timestamp_ms=0.0)
        store = registry.get("m")
        assert all(
            isinstance(s, KLLSketch) for s in store._fine.values()
        )
