"""Tests for the length-prefixed JSON wire protocol."""

import io
import math
import struct

import pytest

from repro.errors import ProtocolError
from repro.service import protocol


def round_trip(payload):
    stream = io.BytesIO(protocol.encode_frame(payload))
    return protocol.read_frame(stream)


class TestEncoding:
    def test_round_trip(self):
        payload = {"op": "ingest", "values": [1.0, 2.5], "metric": "m"}
        assert round_trip(payload) == payload

    def test_canonical_bytes_ignore_key_order(self):
        a = protocol.encode_message({"b": 1, "a": 2})
        b = protocol.encode_message({"a": 2, "b": 1})
        assert a == b
        assert a == b'{"a":2,"b":1}'  # sorted keys, no whitespace

    def test_nonfinite_floats_use_sentinels_not_bare_tokens(self):
        # Bare Infinity/NaN are invalid JSON; the codec must emit the
        # documented sentinel objects instead.
        body = protocol.encode_message({"value": math.inf})
        assert body == b'{"value":{"$float":"inf"}}'
        for token in (b"Infinity", b"NaN"):
            assert token not in protocol.encode_message(
                {"a": math.inf, "b": -math.inf, "c": math.nan}
            )

    def test_nonfinite_floats_round_trip(self):
        payload = {
            "lo": -math.inf,
            "hi": math.inf,
            "values": [1.0, math.inf, [-math.inf]],
            "nested": {"deep": math.inf},
        }
        decoded = round_trip(payload)
        assert decoded["lo"] == -math.inf
        assert decoded["hi"] == math.inf
        assert decoded["values"][1] == math.inf
        assert decoded["values"][2] == [-math.inf]
        assert decoded["nested"]["deep"] == math.inf
        nan = protocol.decode_message(
            protocol.encode_message({"x": math.nan})
        )["x"]
        assert isinstance(nan, float) and math.isnan(nan)

    def test_reserved_sentinel_key_rejected_in_payloads(self):
        with pytest.raises(ProtocolError):
            protocol.encode_message({"v": {"$float": "bogus"}})

    def test_unknown_sentinel_name_rejected_on_decode(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b'{"v":{"$float":"huge"}}')

    def test_unencodable_payload_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_message({"value": object()})

    def test_oversize_outgoing_frame_rejected(self):
        payload = {"blob": "x" * (protocol.MAX_FRAME_BYTES + 16)}
        with pytest.raises(ProtocolError):
            protocol.encode_frame(payload)


class TestDecoding:
    def test_multiple_frames_in_one_stream(self):
        stream = io.BytesIO(
            protocol.encode_frame({"n": 1})
            + protocol.encode_frame({"n": 2})
        )
        assert protocol.read_frame(stream) == {"n": 1}
        assert protocol.read_frame(stream) == {"n": 2}
        assert protocol.read_frame(stream) is None

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError):
            protocol.read_frame(io.BytesIO(b"\x00\x00"))

    def test_eof_mid_body_raises(self):
        frame = protocol.encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError):
            protocol.read_frame(io.BytesIO(frame[:-2]))

    def test_oversize_incoming_length_rejected_before_read(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            protocol.read_frame(io.BytesIO(header))

    def test_invalid_json_body_raises(self):
        body = b"not json"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            protocol.read_frame(stream)

    def test_non_object_body_raises(self):
        body = b"[1,2,3]"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            protocol.read_frame(stream)

    def test_invalid_utf8_body_raises(self):
        body = b"\xff\xfe{}"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            protocol.read_frame(stream)


class TestWriteFrame:
    def test_write_then_read(self):
        stream = io.BytesIO()
        protocol.write_frame(stream, {"op": "ping"})
        stream.seek(0)
        assert protocol.read_frame(stream) == {"op": "ping"}


class TestResponseConstructors:
    def test_ok(self):
        assert protocol.ok(count=3) == {"ok": True, "count": 3}

    def test_error(self):
        response = protocol.error("bad_request", "nope", hint="x")
        assert response == {
            "ok": False,
            "error": "bad_request",
            "message": "nope",
            "hint": "x",
        }

    def test_shed_is_machine_detectable(self):
        response = protocol.shed("queue full")
        assert response["error"] == protocol.OVERLOADED
        assert response["shed"] is True
        assert response["ok"] is False


class TestIdentityOps:
    """``ping``/``node_info`` over a live server: the ops every
    cluster health check and anti-entropy round lead with."""

    @pytest.fixture()
    def server(self):
        from repro.service import ManualClock, MetricRegistry, QuantileServer

        registry = MetricRegistry(clock=ManualClock(0.0))
        with QuantileServer(registry, node_id="proto-test") as srv:
            yield srv

    @pytest.fixture()
    def client(self, server):
        from repro.service import QuantileClient

        host, port = server.address
        with QuantileClient(host, port, retries=0) as cli:
            yield cli

    def test_ping_answers_pong(self, client):
        assert client.call({"op": "ping"}) == {"ok": True, "pong": True}

    def test_node_info_reports_identity_and_frontier(self, client):
        info = client.node_info()
        assert info == {
            "node_id": "proto-test",
            "role": "standalone",
            "wal_watermark": 0,
            "frontier": {},
        }

    def test_node_info_wire_shape_is_flat_json(self, client):
        response = client.call({"op": "node_info"})
        assert response["ok"] is True
        assert set(response) == {
            "ok", "node_id", "role", "wal_watermark", "frontier",
        }
        assert isinstance(response["wal_watermark"], int)
        assert isinstance(response["frontier"], dict)

    def test_cluster_node_info_carries_watermark_and_frontier(self):
        from repro.cluster import LocalCluster
        from repro.service import QuantileClient

        with LocalCluster(n_nodes=2) as cluster:
            with cluster.client() as via_proxy:
                via_proxy.ingest("m", [1.0, 2.0])
            leader = cluster.leader_of("m")
            host, port = cluster.node(leader).address
            with QuantileClient(
                host, port, clock=cluster.clock, retries=0
            ) as direct:
                info = direct.node_info()
            assert info["node_id"] == leader
            assert info["role"] == "leader"
            assert info["wal_watermark"] == 1
            assert info["frontier"][leader] == 1
