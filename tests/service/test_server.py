"""End-to-end tests: TCP client against a live quantile server."""

import socket
import time

import numpy as np
import pytest

from repro.core import DDSketch
from repro.errors import (
    ServerOverloadedError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)
from repro.service import protocol


def make_registry(clock):
    # Wide fine horizon so nothing expires mid-test.
    return MetricRegistry(
        sketch_factory=lambda: DDSketch(alpha=0.01),
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=100_000,
    )


@pytest.fixture()
def server():
    clock = ManualClock(0.0)
    with QuantileServer(make_registry(clock)) as srv:
        srv.clock = clock
        yield srv


@pytest.fixture()
def client(server):
    host, port = server.address
    with QuantileClient(host, port, timeout=5.0, retries=0) as cli:
        yield cli


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping() is True

    def test_ingest_flush_query(self, client, rng):
        values = rng.lognormal(4.6, 0.5, 2_000)
        reference = DDSketch(alpha=0.01)
        reference.update_batch(values)
        for start in range(0, 2_000, 500):
            batch = values[start : start + 500]
            assert client.ingest("lat", batch, timestamp_ms=0.0) == 500
        client.flush()
        assert client.count("lat") == 2_000
        assert client.quantile("lat", 0.5) == reference.quantile(0.5)
        assert client.quantiles("lat", [0.5, 0.99]) == (
            reference.quantiles([0.5, 0.99])
        )
        assert client.rank("lat", 100.0) == reference.rank(100.0)
        assert client.cdf("lat", 100.0) == reference.cdf(100.0)

    def test_range_query_over_tcp(self, client):
        client.ingest("lat", [1.0], timestamp_ms=500.0)
        client.ingest("lat", [100.0], timestamp_ms=5_500.0)
        client.flush()
        assert client.count("lat", t0=0.0, t1=1_000.0) == 1
        assert client.quantile("lat", 0.5, t0=0.0, t1=1_000.0) == (
            pytest.approx(1.0, rel=0.02)
        )
        assert client.quantile("lat", 0.5, t0=5_000.0, t1=6_000.0) == (
            pytest.approx(100.0, rel=0.02)
        )

    def test_tags_route_to_distinct_series(self, client):
        client.ingest(
            "lat", [1.0], timestamp_ms=0.0, tags={"region": "eu"}
        )
        client.ingest(
            "lat", [9.0], timestamp_ms=0.0, tags={"region": "us"}
        )
        client.flush()
        assert client.count("lat", tags={"region": "eu"}) == 1
        assert client.count("lat", tags={"region": "us"}) == 1
        listing = client.metrics()
        assert {"name": "lat", "tags": {"region": "eu"}} in listing
        assert {"name": "lat", "tags": {"region": "us"}} in listing

    def test_stats_op(self, client):
        client.ingest("lat", [1.0, 2.0], timestamp_ms=0.0)
        client.flush()
        stats = client.stats()
        assert stats["metrics"] == 1
        assert stats["events_recorded"] == 2
        assert stats["ingested_values"] == 2
        assert stats["ingest_requests"] == 1
        assert stats["shed_requests"] == 0
        assert stats["requests"] >= 3  # ingest + flush + stats


class TestErrors:
    def test_unknown_metric(self, client):
        with pytest.raises(ServiceError, match="unknown metric"):
            client.quantile("nope", 0.5)

    def test_query_does_not_create_series(self, client, server):
        with pytest.raises(ServiceError):
            client.count("nope")
        assert len(server.registry) == 0

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError, match="unknown_op"):
            client.call({"op": "frobnicate"})

    def test_missing_fields(self, client):
        with pytest.raises(ServiceError, match="bad_request"):
            client.call({"op": "ingest", "values": [1.0]})
        with pytest.raises(ServiceError, match="bad_request"):
            client.call({"op": "ingest", "metric": "m", "values": []})
        with pytest.raises(ServiceError, match="bad_request"):
            client.call({"op": "quantile", "metric": "m"})

    def test_invalid_quantile(self, client):
        client.ingest("lat", [1.0], timestamp_ms=0.0)
        client.flush()
        with pytest.raises(ServiceError, match="invalid_quantile"):
            client.quantile("lat", 1.5)

    def test_empty_range(self, client):
        client.ingest("lat", [1.0], timestamp_ms=0.0)
        client.flush()
        with pytest.raises(ServiceError, match="empty"):
            client.quantile("lat", 0.5, t0=9e6, t1=1e7)

    def test_errors_leave_connection_usable(self, client):
        with pytest.raises(ServiceError):
            client.call({"op": "frobnicate"})
        assert client.ping() is True

    def test_malformed_frame_gets_error_then_close(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            rfile = sock.makefile("rb")
            # A non-object JSON body is a protocol violation.
            sock.sendall(b"\x00\x00\x00\x05[1,2]")
            response = protocol.read_frame(rfile)
            assert response["ok"] is False
            assert response["error"] == "protocol"
            assert protocol.read_frame(rfile) is None  # closed


class TestBackpressure:
    def test_queue_full_sheds_deterministically(self):
        clock = ManualClock(0.0)
        registry = make_registry(clock)
        with QuantileServer(
            registry, ingest_queue_size=3, ingest_workers=1
        ) as server:
            host, port = server.address
            with QuantileClient(host, port, retries=0) as client:
                server.pause_ingest()
                # The single worker parks holding one batch...
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                wait_until(lambda: server.queue_depth() == 0)
                # ...then exactly queue_size batches fit.
                for _ in range(3):
                    client.ingest("lat", [1.0], timestamp_ms=0.0)
                with pytest.raises(ServerOverloadedError):
                    client.ingest("lat", [1.0], timestamp_ms=0.0)
                stats = client.stats()
                assert stats["shed_requests"] == 1
                # Releasing the gate drains everything accepted.
                server.resume_ingest()
                client.flush()
                assert client.count("lat") == 4
                assert client.stats()["ingested_values"] == 4

    def test_shed_is_not_retried_by_client(self):
        clock = ManualClock(0.0)
        registry = make_registry(clock)
        sleeps = []
        with QuantileServer(
            registry, ingest_queue_size=1, ingest_workers=1
        ) as server:
            host, port = server.address
            with QuantileClient(
                host, port, retries=3, sleep=sleeps.append
            ) as client:
                server.pause_ingest()
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                wait_until(lambda: server.queue_depth() == 0)
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                with pytest.raises(ServerOverloadedError):
                    client.ingest("lat", [1.0], timestamp_ms=0.0)
                assert sleeps == []  # overload is not a transport error
                server.resume_ingest()


class TestClientRetry:
    def test_unreachable_server_exhausts_retries(self):
        # Bind-then-close to get a port nobody is listening on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        client = QuantileClient(
            "127.0.0.1",
            port,
            timeout=0.5,
            retries=2,
            backoff_ms=10.0,
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceUnavailableError):
            client.ping()
        # Exponential backoff between the three attempts.
        assert sleeps == [0.01, 0.02]

    def test_reconnects_after_server_side_close(self, server):
        host, port = server.address
        with QuantileClient(host, port, retries=1) as client:
            assert client.ping() is True
            # Forcibly drop the client's socket; the next call must
            # transparently reconnect.
            client._sock.close()
            assert client.ping() is True


class TestLifecycle:
    def test_double_start_rejected(self, server):
        with pytest.raises(Exception):
            server.start()

    def test_stop_is_idempotent(self):
        server = QuantileServer(make_registry(ManualClock()))
        server.start()
        server.stop()
        server.stop()

    def test_numpy_values_ingest(self, client):
        client.ingest(
            "lat", np.asarray([1.0, 2.0]), timestamp_ms=0.0
        )
        client.flush()
        assert client.count("lat") == 2
