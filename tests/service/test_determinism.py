"""End-to-end determinism: two full server runs are byte-identical.

Acceptance criterion of the service PR: with an injected clock and a
fixed seed, ingesting the same stream through the TCP client and
issuing the same query sequence must produce *byte-identical* response
frames across two completely separate server processes-worth of state
(fresh registry, fresh sockets, fresh threads).  Canonical JSON
encoding plus injectable clocks plus the ``flush`` barrier is what
makes this hold.
"""

import numpy as np

from repro.core import DDSketch, paper_config
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)
from repro.service import protocol

METRICS = ("api.latency", "db.latency", "queue.lag")
SEED = 2023


class RecordingClient(QuantileClient):
    """Client that keeps the canonical bytes of every response."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.frames = []

    def call(self, request):
        response = super().call(request)
        self.frames.append(protocol.encode_message(response))
        return response


def run_session(sketch_factory):
    """One complete server life: ingest, query, return response bytes."""
    clock = ManualClock(0.0)
    registry = MetricRegistry(
        sketch_factory=sketch_factory,
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=100_000,
        hot_metrics=(METRICS[0],),
        n_shards=2,
    )
    rng = np.random.default_rng(SEED)
    with QuantileServer(registry, ingest_workers=2) as server:
        host, port = server.address
        with RecordingClient(host, port, retries=0) as client:
            for second in range(8):
                clock.set_time(second * 1_000.0)
                for metric in METRICS:
                    client.ingest(
                        metric,
                        rng.lognormal(4.6, 0.5, 200),
                        timestamp_ms=second * 1_000.0,
                    )
            client.flush()
            for metric in METRICS:
                client.quantiles(metric, [0.5, 0.9, 0.99])
                client.quantile(metric, 0.95, t0=2_000.0, t1=6_000.0)
                client.rank(metric, 100.0)
                client.cdf(metric, 150.0)
                client.count(metric)
                client.count(metric, t0=0.0, t1=4_000.0)
            client.metrics()
            client.stats()
            return client.frames


class TestEndToEndDeterminism:
    def test_two_runs_are_byte_identical_seeded_kll(self):
        """Randomised sketch, fixed seed: the whole stack reproduces."""

        def factory():
            return paper_config("kll", seed=SEED)

        first = run_session(factory)
        second = run_session(factory)
        assert len(first) == len(second)
        for index, (a, b) in enumerate(zip(first, second)):
            assert a == b, (
                f"response {index} differs between runs:\n{a!r}\nvs\n{b!r}"
            )

    def test_two_runs_are_byte_identical_ddsketch(self):
        def factory():
            return DDSketch(alpha=0.01)

        assert run_session(factory) == run_session(factory)


class TestTCPMatchesUnpartitioned:
    def test_served_answers_equal_local_reference(self):
        """The network + partition + queue path adds no drift."""
        clock = ManualClock(0.0)
        registry = MetricRegistry(
            sketch_factory=lambda: DDSketch(alpha=0.01),
            clock=clock,
            partition_ms=1_000.0,
            fine_partitions=100_000,
        )
        rng = np.random.default_rng(7)
        reference = DDSketch(alpha=0.01)
        with QuantileServer(registry) as server:
            host, port = server.address
            with QuantileClient(host, port, retries=0) as client:
                for second in range(6):
                    batch = rng.lognormal(4.6, 0.5, 300)
                    reference.update_batch(batch)
                    client.ingest(
                        "lat", batch, timestamp_ms=second * 1_000.0
                    )
                client.flush()
                assert client.count("lat") == reference.count
                for q in (0.05, 0.5, 0.9, 0.99):
                    assert client.quantile("lat", q) == (
                        reference.quantile(q)
                    )
                assert client.rank("lat", 120.0) == reference.rank(120.0)
                assert client.cdf("lat", 120.0) == reference.cdf(120.0)
