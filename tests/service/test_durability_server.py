"""End-to-end durability: TCP server with WAL + checkpoints attached."""

import numpy as np
import pytest

from repro.core import DDSketch
from repro.durability import DurabilityManager, FlushPolicy
from repro.errors import ServiceError
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)


def make_registry(clock):
    return MetricRegistry(
        sketch_factory=lambda: DDSketch(alpha=0.01),
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=100_000,
    )


def make_manager(data_dir, clock, **kwargs):
    kwargs.setdefault("flush_policy", FlushPolicy(mode="always"))
    kwargs.setdefault("checkpoint_interval_ms", 0.0)
    return DurabilityManager(data_dir, clock=clock, **kwargs)


def serve(data_dir, clock, **kwargs):
    return QuantileServer(
        make_registry(clock),
        durability=make_manager(data_dir, clock, **kwargs),
    )


def connect(server):
    host, port = server.address
    return QuantileClient(host, port, timeout=5.0, retries=0)


class TestRestartRoundTrip:
    def test_queries_identical_after_restart(self, tmp_path, rng):
        values = rng.lognormal(4.6, 0.5, 3_000)
        qs = (0.1, 0.5, 0.9, 0.99)
        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                for start in range(0, 3_000, 500):
                    client.ingest(
                        "lat", values[start : start + 500],
                        timestamp_ms=0.0,
                    )
                client.flush()
                before = [client.quantile("lat", q) for q in qs]
                rank_before = client.rank("lat", 100.0)
                count_before = client.count("lat")

        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                assert client.count("lat") == count_before
                after = [client.quantile("lat", q) for q in qs]
                assert after == before
                assert client.rank("lat", 100.0) == rank_before

    def test_restart_after_checkpoint_plus_suffix(self, tmp_path, rng):
        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                client.ingest(
                    "lat", rng.pareto(1.0, 1_000) + 1.0, timestamp_ms=0.0
                )
                client.flush()
                assert client.checkpoint() == 1
                client.ingest(
                    "lat", rng.pareto(1.0, 500) + 1.0, timestamp_ms=0.0
                )
                client.flush()
                count_before = client.count("lat")
                median_before = client.quantile("lat", 0.5)

        with serve(tmp_path, ManualClock(0.0)) as server:
            # Clean shutdown wrote a final checkpoint at seq 2, so the
            # restart recovers from it with nothing left to replay.
            report = server.durability.last_recovery
            assert report.checkpoint_seq == 2
            assert report.records_replayed == 0
            with connect(server) as client:
                assert client.count("lat") == count_before == 1_500
                assert client.quantile("lat", 0.5) == median_before

    def test_restart_preserves_tagged_series(self, tmp_path):
        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                client.ingest(
                    "lat", [1.0, 2.0], timestamp_ms=0.0,
                    tags={"svc": "api"},
                )
                client.ingest(
                    "lat", [10.0, 20.0], timestamp_ms=0.0,
                    tags={"svc": "db"},
                )
                client.flush()

        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                assert client.count("lat", tags={"svc": "api"}) == 2
                assert client.count("lat", tags={"svc": "db"}) == 2


class TestCheckpointOp:
    def test_checkpoint_op_requires_durability(self):
        clock = ManualClock(0.0)
        with QuantileServer(make_registry(clock)) as server:
            with connect(server) as client:
                with pytest.raises(ServiceError):
                    client.checkpoint()

    def test_checkpoint_op_reports_watermark(self, tmp_path):
        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                client.ingest("lat", [2.0], timestamp_ms=0.0)
                client.flush()
                assert client.checkpoint() == 2

    def test_stats_include_durability_counters(self, tmp_path):
        with serve(tmp_path, ManualClock(0.0)) as server:
            with connect(server) as client:
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                client.flush()
                stats = client.stats()
                assert stats["durability_last_seq"] == 1
                assert stats["durability_records_journaled"] == 1
                client.checkpoint()
                stats = client.stats()
                assert stats["durability_checkpoint_seq"] == 1
                assert stats["durability_checkpoints_written"] == 1

    def test_stats_without_durability_omit_counters(self):
        clock = ManualClock(0.0)
        with QuantileServer(make_registry(clock)) as server:
            with connect(server) as client:
                assert "durability_last_seq" not in client.stats()


class TestCheckpointCadence:
    """ManualClock drives the cadence: zero sleeps in this class."""

    def test_ingest_triggers_due_checkpoint(self, tmp_path):
        clock = ManualClock(0.0)
        server = serve(
            tmp_path, clock, checkpoint_interval_ms=10_000.0
        )
        with server:
            with connect(server) as client:
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                client.flush()
                assert server.durability.last_checkpoint_seq == 0
                clock.advance(10_001.0)
                # The next acked ingest notices the elapsed interval.
                client.ingest("lat", [2.0], timestamp_ms=0.0)
                client.flush()
                assert server.durability.last_checkpoint_seq >= 1

    def test_no_checkpoint_before_interval(self, tmp_path):
        clock = ManualClock(0.0)
        server = serve(
            tmp_path, clock, checkpoint_interval_ms=10_000.0
        )
        with server:
            with connect(server) as client:
                for _ in range(5):
                    client.ingest("lat", [1.0], timestamp_ms=0.0)
                    clock.advance(100.0)
                client.flush()
                assert server.durability.last_checkpoint_seq == 0

    def test_stop_writes_final_checkpoint(self, tmp_path):
        clock = ManualClock(0.0)
        with serve(tmp_path, clock) as server:
            with connect(server) as client:
                client.ingest("lat", [1.0], timestamp_ms=0.0)
                client.flush()
        # Restart recovers from the shutdown checkpoint, no replay.
        with serve(tmp_path, ManualClock(0.0)) as server:
            report = server.durability.last_recovery
            assert report.checkpoint_seq == 1
            assert report.records_replayed == 0


class TestClientReconnect:
    def test_reconnect_after_server_restart(self, tmp_path):
        with serve(tmp_path, ManualClock(0.0)) as server:
            host, port = server.address
            client = QuantileClient(host, port, timeout=5.0, retries=0)
            client.connect()
            client.ingest("lat", [1.0, 2.0, 3.0], timestamp_ms=0.0)
            client.flush()
        # Server gone; a fresh one takes over on a new port.
        with serve(tmp_path, ManualClock(0.0)) as server:
            host, port = server.address
            client.reconnect(host, port)
            try:
                assert client.count("lat") == 3
            finally:
                client.close()


class TestDurabilityOffUnchanged:
    def test_plain_server_still_serves(self):
        clock = ManualClock(0.0)
        with QuantileServer(make_registry(clock)) as server:
            with connect(server) as client:
                client.ingest("lat", [5.0], timestamp_ms=0.0)
                client.flush()
                assert client.count("lat") == 1
