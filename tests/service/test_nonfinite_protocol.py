"""Non-finite floats over a live TCP connection.

``rank(metric, inf)`` and ``cdf(metric, -inf)`` are legitimate queries
(saturate high / saturate low), but bare ``Infinity`` tokens are not
valid JSON — the wire codec transports them as ``{"$float": ...}``
sentinel objects.  These tests drive real sockets end to end so a
regression in either direction of the sentinel translation (client
encode, server decode, and back) fails loudly.
"""

import math

import pytest

from repro.core import DDSketch
from repro.errors import ServiceError
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)


@pytest.fixture()
def server():
    clock = ManualClock(0.0)
    registry = MetricRegistry(
        sketch_factory=lambda: DDSketch(alpha=0.01),
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=100_000,
    )
    with QuantileServer(registry) as srv:
        yield srv


@pytest.fixture()
def client(server):
    host, port = server.address
    with QuantileClient(host, port, timeout=5.0, retries=0) as cli:
        yield cli


class TestNonFiniteQueries:
    def test_rank_at_infinities_saturates(self, client):
        client.ingest("lat", [1.0, 2.0, 3.0], timestamp_ms=0.0)
        client.flush()
        assert client.rank("lat", math.inf) == 3
        assert client.rank("lat", -math.inf) == 0

    def test_cdf_at_infinities_saturates(self, client):
        client.ingest("lat", [1.0, 2.0, 3.0], timestamp_ms=0.0)
        client.flush()
        assert client.cdf("lat", math.inf) == 1.0
        assert client.cdf("lat", -math.inf) == 0.0

    def test_single_value_sketch_round_trips(self, client):
        client.ingest("one", [7.0], timestamp_ms=0.0)
        client.flush()
        assert client.count("one") == 1
        assert client.quantile("one", 0.5) == pytest.approx(7.0, rel=0.02)
        assert client.rank("one", math.inf) == 1
        assert client.cdf("one", -math.inf) == 0.0

    def test_empty_window_query_is_a_clean_error_not_a_codec_crash(
        self, client
    ):
        # A time window with no retained data surfaces the sketch-level
        # "empty" condition as a structured error response; the frame
        # carrying it must stay strict JSON even though the underlying
        # sketch bookkeeping holds _min=+inf/_max=-inf.
        client.ingest("lat", [1.0], timestamp_ms=0.0)
        client.flush()
        with pytest.raises(ServiceError, match="empty"):
            client.quantile("lat", 0.5, t0=50_000.0, t1=60_000.0)
        # The connection survives the error: data is still queryable.
        assert client.count("lat") == 1

    def test_nan_query_value_is_rejected_not_smuggled(self, client):
        # NaN encodes and decodes faithfully, and then fails sketch
        # validation server-side — the error comes back as data.
        client.ingest("lat", [1.0, 2.0], timestamp_ms=0.0)
        client.flush()
        with pytest.raises(ServiceError):
            client.rank("lat", math.nan)
        assert client.ping() is True
