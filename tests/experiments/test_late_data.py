"""Tests for the Sec 4.6 late-data experiment (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.late_data import run_late_data

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def result():
    return run_late_data(
        datasets=("uniform",), sketches=("ddsketch",), scale=SMOKE,
        delay_mean_ms=150.0,
    )


class TestLateData:
    def test_delay_produces_loss(self, result):
        assert result.with_delay["uniform"].loss_fraction > 0.0
        assert result.without_delay["uniform"].loss_fraction == 0.0

    def test_accuracy_survives_loss(self, result):
        # Sec 4.6: losing a small share of events barely moves the
        # error of a summary sketch.
        delayed = result.with_delay["uniform"].grouped["ddsketch"]
        ideal = result.without_delay["uniform"].grouped["ddsketch"]
        assert delayed["mid"] < ideal["mid"] + 0.05

    def test_table_renders(self, result):
        table = result.to_table()
        assert "mid(late)" in table
        assert "uniform" in table
