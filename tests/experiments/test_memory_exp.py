"""Tests for the Table 3 memory experiment (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.memory import measure_memory

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def result():
    return measure_memory(
        ("kll", "moments", "ddsketch", "uddsketch", "req"), scale=SMOKE
    )


class TestMeasureMemory:
    def test_covers_all_datasets(self, result):
        assert set(result.kb) == {"pareto", "uniform", "nyt", "power"}

    def test_moments_constant_and_smallest(self, result):
        for dataset, by_sketch in result.kb.items():
            assert by_sketch["moments"] == pytest.approx(0.14, abs=0.03)
            assert by_sketch["moments"] == min(by_sketch.values()), dataset

    def test_uddsketch_largest(self, result):
        # Table 3: the map-based store tops every row.
        for dataset, by_sketch in result.kb.items():
            assert by_sketch["uddsketch"] == max(by_sketch.values()), dataset

    def test_kll_size_data_independent(self, result):
        # Table 3: KLL retains the same sample size on every data set.
        sizes = {by_sketch["kll"] for by_sketch in result.kb.values()}
        assert max(sizes) - min(sizes) < 0.5

    def test_ddsketch_pareto_needs_more_buckets_than_power(self, result):
        # Sec 4.3: ~670 buckets for Pareto vs ~120 for Power.
        assert (
            result.buckets["pareto"]["ddsketch"]
            > result.buckets["power"]["ddsketch"]
        )

    def test_everything_under_30kb(self, result):
        # Sec 4.3: "All of the algorithms consume less than 0.03 MB".
        for by_sketch in result.kb.values():
            for kb in by_sketch.values():
                assert kb < 30.0

    def test_table_renders(self, result):
        table = result.to_table()
        assert "pareto" in table
        assert "uddsketch" in table
