"""Unit tests for the plain-text reporting helpers."""

from repro.experiments.reporting import format_seconds, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", 1.0], ["longer-name", 22.5]],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        header, rule, row1, row2 = lines
        assert header.index("value") == row1.index("1")

    def test_title(self):
        table = format_table(["h"], [["x"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000123], [1234567.0], [0.5]])
        assert "0.000123" in table
        assert "1.23e+06" in table
        assert "0.5" in table

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestFormatSeconds:
    def test_units(self):
        assert format_seconds(2.5e-9).endswith("ns")
        assert format_seconds(3.2e-6).endswith("us")
        assert format_seconds(4.5e-3).endswith("ms")
        assert format_seconds(1.5).endswith("s")

    def test_values(self):
        assert format_seconds(1e-6) == "1.00 us"
        assert format_seconds(0.25) == "250.00 ms"
