"""Tests for the accuracy experiment runner (smoke scale)."""

import numpy as np
import pytest

from repro.data.distributions import Uniform
from repro.errors import ExperimentError
from repro.experiments.accuracy import run_accuracy, run_adaptability
from repro.experiments.config import SCALES

SMOKE = SCALES["smoke"]
SKETCHES = ("ddsketch", "kll")


@pytest.fixture(scope="module")
def uniform_result():
    return run_accuracy("uniform", SKETCHES, scale=SMOKE)


class TestRunAccuracy:
    def test_result_structure(self, uniform_result):
        assert uniform_result.dataset == "uniform"
        assert set(uniform_result.per_quantile) == set(SKETCHES)
        for errors in uniform_result.per_quantile.values():
            assert set(errors) == set(SMOKE.quantiles)
            for ci in errors.values():
                assert ci.n == SMOKE.num_runs
                assert ci.mean >= 0

    def test_grouping_present(self, uniform_result):
        for groups in uniform_result.grouped.values():
            assert set(groups) == {"mid", "upper", "p99"}

    def test_uniform_is_easy_for_everyone(self, uniform_result):
        # Fig 6b: every sketch beats the 1% threshold on uniform data
        # (smoke-scale windows are small, so allow some headroom).
        for sketch, groups in uniform_result.grouped.items():
            assert groups["mid"] < 0.05, sketch

    def test_no_delay_no_loss(self, uniform_result):
        assert uniform_result.loss_fraction == 0.0

    def test_delay_causes_loss(self):
        result = run_accuracy(
            "uniform", ("ddsketch",), scale=SMOKE, delay_mean_ms=150.0
        )
        assert result.loss_fraction > 0.0

    def test_custom_distribution_accepted(self):
        result = run_accuracy(
            Uniform(5.0, 6.0), ("ddsketch",), scale=SMOKE
        )
        assert result.dataset == "uniform(5,6)"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ExperimentError):
            run_accuracy("stocks", SKETCHES, scale=SMOKE)

    def test_window_override(self):
        result = run_accuracy(
            "uniform", ("ddsketch",), scale=SMOKE,
            window_size_ms=1_000.0,
        )
        assert result.window_size_ms == 1_000.0

    def test_deterministic(self, uniform_result):
        again = run_accuracy("uniform", SKETCHES, scale=SMOKE)
        for sketch in SKETCHES:
            for q in SMOKE.quantiles:
                assert again.per_quantile[sketch][q].mean == (
                    uniform_result.per_quantile[sketch][q].mean
                )

    def test_to_table_renders(self, uniform_result):
        table = uniform_result.to_table()
        assert "ddsketch" in table
        assert "q0.99" in table


class TestRunAdaptability:
    def test_structure_and_ddsketch_stability(self):
        result = run_adaptability(("ddsketch", "moments"), scale=SMOKE)
        assert result.dataset == "binomial->uniform"
        # Fig 8b: DDSketch is unaffected by the distribution switch.
        assert result.per_quantile["ddsketch"][0.5].mean < 0.02
        assert "moments" in result.per_quantile
