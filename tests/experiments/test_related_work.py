"""Tests for the Sec 5.2 related-work comparison (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.related_work import COMPARED, run_related_work

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def result():
    return run_related_work(scale=SMOKE)


class TestRelatedWork:
    def test_covers_all_eleven_algorithms(self, result):
        assert set(result.rows) == set(COMPARED)
        assert len(COMPARED) == 11

    def test_metrics_present_and_sane(self, result):
        for name, row in result.rows.items():
            assert row["mean_rel_err"] >= 0, name
            assert row["mean_rank_err"] >= 0, name
            assert row["size_kb"] > 0, name
            assert row["ingest_s"] > 0, name

    def test_dcs_needs_most_space(self, result):
        # Sec 5.2.3: the turnstile algorithm's footprint dwarfs the
        # cash-register sketches.
        assert result.rows["dcs"]["size_kb"] == max(
            row["size_kb"] for row in result.rows.values()
        )

    def test_moments_smallest(self, result):
        assert result.rows["moments"]["size_kb"] == min(
            row["size_kb"] for row in result.rows.values()
        )

    def test_ddsketch_holds_guarantee(self, result):
        assert result.rows["ddsketch"]["mean_rel_err"] <= 0.0101

    def test_table_renders(self, result):
        table = result.to_table()
        assert "dcs" in table and "hdr" in table
