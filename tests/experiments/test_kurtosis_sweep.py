"""Tests for the Fig 7 kurtosis sweep (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.kurtosis_sweep import run_kurtosis_sweep

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def result():
    return run_kurtosis_sweep(("ddsketch", "kll"), scale=SMOKE)


class TestKurtosisSweep:
    def test_covers_full_suite(self, result):
        assert result.labels[0] == "uniform"
        assert result.labels[-1] == "pareto"
        assert len(result.labels) == 7

    def test_measured_kurtosis_ordering(self, result):
        assert result.measured_kurtosis["uniform"] < 0
        assert result.measured_kurtosis["pareto"] > 50

    def test_ddsketch_stable_across_kurtosis(self, result):
        # Fig 7: DDSketch's error is distribution-independent.
        for label in result.labels:
            assert result.errors[label]["ddsketch"].mean <= 0.011, label

    def test_kll_degrades_with_kurtosis(self, result):
        # Fig 7: sampling error at the 0.98 quantile grows with skew.
        kll_uniform = result.errors["uniform"]["kll"].mean
        kll_pareto = result.errors["pareto"]["kll"].mean
        assert kll_pareto > kll_uniform

    def test_table_renders(self, result):
        table = result.to_table()
        assert "0.98" in table
        assert "pareto" in table
