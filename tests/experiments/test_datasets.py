"""Tests for the Fig 4 data-set profiler (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.datasets import profile_datasets, profiles_table

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def profiles():
    return profile_datasets(scale=SMOKE)


class TestProfiles:
    def test_all_datasets_profiled(self, profiles):
        assert set(profiles) == {"pareto", "uniform", "nyt", "power"}

    def test_stats_match_scale(self, profiles):
        for profile in profiles.values():
            assert profile.stats["count"] == SMOKE.memory_points

    def test_kurtosis_ordering(self, profiles):
        # Fig 4: uniform is flat, Pareto extremely long-tailed.
        assert profiles["uniform"].stats["kurtosis"] < 0
        assert profiles["pareto"].stats["kurtosis"] > (
            profiles["power"].stats["kurtosis"]
        )

    def test_histogram_shape(self, profiles):
        for profile in profiles.values():
            assert profile.histogram.sum() > 0
            assert profile.bin_edges.size == profile.histogram.size + 1

    def test_power_is_bimodal(self, profiles):
        modes = profiles["power"].modes
        assert len(modes) >= 2
        # One mode in the idle hump, one in the active hump.
        assert any(m < 0.8 for m in modes[:4])
        assert any(m > 1.0 for m in modes[:4])

    def test_table_renders(self, profiles):
        table = profiles_table(profiles)
        assert "kurtosis" in table
        assert "nyt" in table
