"""Tests for the speed experiment runners (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.speed import (
    MERGE_DISTRIBUTIONS,
    measure_insertion,
    measure_merge,
    measure_query,
)

SMOKE = SCALES["smoke"]
SKETCHES = ("ddsketch", "moments")


class TestInsertion:
    def test_measures_all_sketches(self):
        result = measure_insertion(SKETCHES, scale=SMOKE)
        assert set(result.seconds_per_op) == set(SKETCHES)
        for seconds in result.seconds_per_op.values():
            assert 0 < seconds < 1e-3  # sub-millisecond per element

    def test_ranking_sorted(self):
        result = measure_insertion(SKETCHES, scale=SMOKE)
        ranking = result.ranking()
        times = [result.seconds_per_op[name] for name in ranking]
        assert times == sorted(times)

    def test_table_renders(self):
        result = measure_insertion(("ddsketch",), scale=SMOKE)
        assert "insertion" in result.to_table()


class TestQuery:
    def test_sizes_and_structure(self):
        results = measure_query(
            SKETCHES, data_sizes=(1_000, 5_000), scale=SMOKE,
            repetitions=2,
        )
        assert set(results) == {1_000, 5_000}
        for result in results.values():
            assert set(result.seconds_per_op) == set(SKETCHES)

    def test_moments_query_cost_independent_of_size(self):
        # Fig 5b: Moments Sketch query cost is solver-bound, not
        # data-size-bound.
        results = measure_query(
            ("moments",), data_sizes=(1_000, 10_000), scale=SMOKE,
            repetitions=2,
        )
        small = results[1_000].seconds_per_op["moments"]
        large = results[10_000].seconds_per_op["moments"]
        assert large < 20 * small


class TestMerge:
    def test_merge_distributions_match_paper(self):
        names = [dist.name for dist in MERGE_DISTRIBUTIONS]
        assert names == [
            "uniform(30,100)", "binomial(n=100,p=0.2)",
            "zipf(n=20,s=0.6)",
        ]

    def test_measures_and_verifies_counts(self):
        result = measure_merge(SKETCHES, num_sketches=5, scale=SMOKE)
        for name in SKETCHES:
            assert result.seconds_per_op[name] > 0
            assert result.detail[name]["merged_count"] == (
                5 * SMOKE.merge_prefill
            )

    def test_moments_merges_fastest(self):
        # Fig 5c headline: Moments Sketch merge is vector addition.
        result = measure_merge(
            ("moments", "uddsketch", "req"), num_sketches=8,
            scale=SMOKE,
        )
        assert result.ranking()[0] == "moments"
