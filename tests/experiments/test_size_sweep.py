"""Tests for the accuracy-vs-space sweep (smoke scale)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import SCALES
from repro.experiments.size_sweep import SWEEPS, run_size_sweep

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def result():
    return run_size_sweep(("ddsketch", "moments"), scale=SMOKE)


class TestSizeSweep:
    def test_curve_structure(self, result):
        assert set(result.curves) == {"ddsketch", "moments"}
        for sketch, curve in result.curves.items():
            assert len(curve) == len(SWEEPS[sketch])
            for label, size, error in curve:
                assert size > 0
                assert error >= 0

    def test_ddsketch_monotone(self, result):
        assert result.is_tradeoff_monotone("ddsketch")

    def test_tighter_alpha_needs_more_space(self, result):
        curve = result.curves["ddsketch"]
        sizes = [size for _label, size, _err in curve]
        # SWEEPS orders alphas loosest -> tightest.
        assert sizes == sorted(sizes)

    def test_more_moments_cost_bytes_linearly(self, result):
        curve = result.curves["moments"]
        sizes = [size for _label, size, _err in curve]
        assert sizes == sorted(sizes)
        assert sizes[-1] - sizes[0] == (15 - 4) * 8

    def test_unknown_sketch_rejected(self):
        with pytest.raises(ExperimentError):
            run_size_sweep(("exact",), scale=SMOKE)

    def test_table_renders(self, result):
        table = result.to_table()
        assert "bytes" in table
        assert "a=0.01" in table
