"""Unit tests for experiment configuration."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import (
    DEFAULT_SKETCHES,
    SCALES,
    current_scale,
)


class TestScales:
    def test_three_scales_defined(self):
        assert set(SCALES) == {"smoke", "quick", "paper"}

    def test_paper_scale_matches_sec42(self):
        paper = SCALES["paper"]
        assert paper.rate_per_sec == 50_000
        assert paper.window_size_ms == 20_000.0
        assert paper.events_per_window == 1_000_000
        assert paper.num_windows == 10
        assert paper.num_runs == 10
        assert paper.merge_sketches == 1_000
        assert paper.merge_prefill == 1_000_000

    def test_duration_covers_discarded_window(self):
        scale = SCALES["smoke"]
        assert scale.duration_ms == scale.window_size_ms * (
            scale.num_windows + 1
        )

    def test_quantiles_are_papers(self):
        for scale in SCALES.values():
            assert scale.quantiles == (
                0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99,
            )

    def test_smaller_scales_are_smaller(self):
        assert (
            SCALES["smoke"].events_per_window
            < SCALES["quick"].events_per_window
            < SCALES["paper"].events_per_window
        )


class TestCurrentScale:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "PAPER")
        assert current_scale().name == "paper"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ExperimentError):
            current_scale()


class TestDefaults:
    def test_default_sketches_are_the_papers_five(self):
        assert DEFAULT_SKETCHES == (
            "kll", "moments", "ddsketch", "uddsketch", "req",
        )
