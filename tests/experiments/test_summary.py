"""Tests for the Table 4 summary derivation."""

import pytest

from repro.experiments.accuracy import AccuracyResult
from repro.experiments.speed import SpeedResult
from repro.experiments.summary import (
    SKETCHING_APPROACH,
    build_summary,
    grade_accuracy,
    grade_adaptability,
    grade_speed,
)
from repro.metrics.stats import MeanWithCI


def speed(times: dict[str, float]) -> SpeedResult:
    return SpeedResult(operation="test", seconds_per_op=times)


def accuracy(dataset: str, grouped: dict[str, dict[str, float]],
             per_quantile=None) -> AccuracyResult:
    return AccuracyResult(
        dataset=dataset,
        quantiles=(0.5,),
        per_quantile=per_quantile or {
            s: {0.5: MeanWithCI(g.get("mid", 0.0), 0.0, 1)}
            for s, g in grouped.items()
        },
        grouped=grouped,
    )


class TestGradeSpeed:
    def test_terciles(self):
        grades = grade_speed(speed({
            "a": 1e-6, "b": 2e-6, "c": 1e-5, "d": 2e-5, "e": 1e-4,
        }))
        assert grades["a"] == "High"
        assert grades["e"] == "Low"
        assert grades["c"] == "Medium"

    def test_two_sketches(self):
        grades = grade_speed(speed({"fast": 1e-6, "slow": 1e-4}))
        assert grades["fast"] == "High"


class TestGradeAccuracy:
    def test_all_when_everywhere_accurate(self):
        results = {
            d: accuracy(d, {"dds": {"upper": 0.005}})
            for d in ("pareto", "uniform", "nyt", "power")
        }
        assert grade_accuracy(results, "upper")["dds"] == "All"

    def test_non_skewed_when_pareto_fails(self):
        # Table 4: KLL's tail accuracy is graded "Non-Skewed".
        grouped = {
            "pareto": {"kll": {"upper": 0.3}},
            "uniform": {"kll": {"upper": 0.002}},
            "nyt": {"kll": {"upper": 0.004}},
            "power": {"kll": {"upper": 0.3}},
        }
        results = {d: accuracy(d, g) for d, g in grouped.items()}
        verdict = grade_accuracy(results, "upper")["kll"]
        assert verdict != "All"

    def test_synthetic_when_only_synthetic_passes(self):
        grouped = {
            "pareto": {"m": {"upper": 0.005}},
            "uniform": {"m": {"upper": 0.005}},
            "nyt": {"m": {"upper": 0.2}},
            "power": {"m": {"upper": 0.2}},
        }
        results = {d: accuracy(d, g) for d, g in grouped.items()}
        assert grade_accuracy(results, "upper")["m"] == "Synthetic"


class TestGradeAdaptability:
    def test_high_when_all_pass(self):
        result = accuracy("shift", {}, per_quantile={
            "dds": {0.25: MeanWithCI(0.001, 0, 1),
                    0.5: MeanWithCI(0.002, 0, 1)},
        })
        assert grade_adaptability(result)["dds"] == "High"

    def test_inconsistent_when_only_median_fails(self):
        # Table 4: KLL/REQ fail only at the regime boundary.
        result = accuracy("shift", {}, per_quantile={
            "kll": {0.25: MeanWithCI(0.001, 0, 1),
                    0.5: MeanWithCI(0.4, 0, 1)},
        })
        assert grade_adaptability(result)["kll"] == "Inconsistent"

    def test_low_when_more_fails(self):
        result = accuracy("shift", {}, per_quantile={
            "m": {0.25: MeanWithCI(0.2, 0, 1),
                  0.5: MeanWithCI(0.4, 0, 1)},
        })
        assert grade_adaptability(result)["m"] == "Low"


class TestBuildSummary:
    def test_assembles_table(self):
        acc = {
            d: accuracy(d, {
                "dds": {"mid": 0.004, "upper": 0.004},
                "kll": {"mid": 0.004, "upper": 0.2},
            })
            for d in ("pareto", "uniform", "nyt", "power")
        }
        adapt = accuracy("shift", {}, per_quantile={
            "dds": {0.5: MeanWithCI(0.001, 0, 1)},
            "kll": {0.5: MeanWithCI(0.4, 0, 1)},
        })
        fast = speed({"dds": 1e-6, "kll": 1e-5})
        summary = build_summary(acc, fast, fast, fast, adapt)
        assert summary.approach == SKETCHING_APPROACH
        table = summary.to_table(("kll", "dds"))
        assert "Sketching approach" in table
        assert "Adaptability" in table
