"""Tests for ASCII figure rendering."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import (
    BAR,
    bar_chart,
    grouped_bar_chart,
    line_chart,
)


class TestBarChart:
    def test_largest_value_fills_width(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert BAR * 10 in lines[1]  # b's bar
        assert BAR * 5 in lines[0]

    def test_values_printed(self):
        chart = bar_chart({"x": 0.1234})
        assert "0.1234" in chart

    def test_title(self):
        chart = bar_chart({"x": 1.0}, title="My Figure")
        assert chart.splitlines()[0] == "My Figure"

    def test_log_scale_compresses(self):
        linear = bar_chart({"a": 1.0, "b": 1000.0}, width=30)
        logged = bar_chart(
            {"a": 1.0, "b": 1000.0}, width=30, log_scale=True
        )
        a_linear = linear.splitlines()[0].count(BAR)
        a_logged = logged.splitlines()[0].count(BAR)
        assert a_linear == 0
        assert a_logged == 0  # a at the log floor
        assert logged.splitlines()[1].count(BAR) == 30

    def test_zero_value_with_log(self):
        chart = bar_chart({"a": 0.0, "b": 1.0}, log_scale=True)
        assert "0" in chart

    def test_validation(self):
        with pytest.raises(ExperimentError):
            bar_chart({})
        with pytest.raises(ExperimentError):
            bar_chart({"a": -1.0})


class TestGroupedBarChart:
    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart(
            {"g1": {"a": 1.0}, "g2": {"a": 2.0}}, width=10
        )
        lines = chart.splitlines()
        g1_bar = lines[1].count(BAR)
        g2_bar = lines[3].count(BAR)
        assert g2_bar == 10
        assert g1_bar == 5

    def test_group_headers(self):
        chart = grouped_bar_chart({"mid": {"kll": 0.1}})
        assert "- mid" in chart

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            grouped_bar_chart({})


class TestLineChart:
    def test_markers_and_legend(self):
        chart = line_chart(
            {"kll": [(1.0, 1.0), (10.0, 2.0)],
             "dds": [(1.0, 2.0), (10.0, 1.0)]},
        )
        assert "a=kll" in chart
        assert "b=dds" in chart
        assert "a" in chart.splitlines()[0] or any(
            "a" in line for line in chart.splitlines()
        )

    def test_log_axes_filter_nonpositive(self):
        chart = line_chart(
            {"s": [(0.0, 1.0), (10.0, 1.0)]}, log_x=True
        )
        assert "s" in chart  # the positive point still drew

    def test_axis_labels_reflect_range(self):
        chart = line_chart(
            {"s": [(1.0, 5.0), (100.0, 50.0)]}, log_x=True, log_y=True
        )
        assert "1" in chart and "100" in chart

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            line_chart({})
        with pytest.raises(ExperimentError):
            line_chart({"s": [(-1.0, 1.0)]}, log_x=True)

    def test_single_point(self):
        chart = line_chart({"s": [(1.0, 1.0)]})
        assert "s" in chart


class TestResultFigures:
    def test_accuracy_figure_renders(self):
        from repro.experiments.accuracy import run_accuracy
        from repro.experiments.config import SCALES

        result = run_accuracy(
            "uniform", ("ddsketch",), scale=SCALES["smoke"]
        )
        figure = result.to_figure()
        assert "- mid" in figure and "- p99" in figure
        assert "ddsketch" in figure
