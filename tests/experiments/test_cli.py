"""Tests for the experiments CLI (smoke scale)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestCLI:
    def test_all_paper_artifacts_have_experiments(self):
        expected = {
            "table3", "fig4", "fig5a", "fig5b", "fig5c",
            "fig6a", "fig6b", "fig6c", "fig6d",
            "fig7", "fig8", "late", "window", "table4", "related",
            "sweep", "parallel", "service",
        }
        assert set(EXPERIMENTS) == expected

    def test_runs_one_experiment(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "uddsketch" in out

    def test_fig5a_runs(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["fig5a"]) == 0
        assert "insertion" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scale_banner(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        main(["fig4"])
        assert "scale=smoke" in capsys.readouterr().out
