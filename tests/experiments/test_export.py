"""Tests for structured result export."""

import csv
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.accuracy import run_accuracy
from repro.experiments.config import SCALES
from repro.experiments.export import (
    accuracy_csv_rows,
    speed_csv_rows,
    to_jsonable,
    write_csv,
    write_json,
)
from repro.experiments.memory import measure_memory
from repro.experiments.speed import SpeedResult, measure_insertion

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def accuracy_result():
    return run_accuracy("uniform", ("ddsketch",), scale=SMOKE)


class TestToJsonable:
    def test_accuracy_structure(self, accuracy_result):
        data = to_jsonable(accuracy_result)
        assert data["kind"] == "accuracy"
        assert data["dataset"] == "uniform"
        ci = data["per_quantile"]["ddsketch"]["0.5"]
        assert set(ci) == {"mean", "ci_half_width", "n", "confidence"}
        json.dumps(data)  # must be serialisable

    def test_speed_structure(self):
        result = measure_insertion(("ddsketch",), scale=SMOKE)
        data = to_jsonable(result)
        assert data["kind"] == "speed"
        assert "ddsketch" in data["seconds_per_op"]
        assert data["ranking"] == ["ddsketch"]

    def test_memory_structure(self):
        result = measure_memory(("moments",), scale=SMOKE)
        data = to_jsonable(result)
        assert data["kind"] == "memory"
        assert data["points"] == SMOKE.memory_points
        json.dumps(data)

    def test_recursive_containers(self, accuracy_result):
        data = to_jsonable({"uniform": accuracy_result, "n": 3})
        assert data["uniform"]["kind"] == "accuracy"
        assert data["n"] == 3

    def test_unknown_type_rejected(self):
        with pytest.raises(ExperimentError):
            to_jsonable(object())


class TestFileOutput:
    def test_write_json(self, accuracy_result, tmp_path):
        path = write_json(accuracy_result, tmp_path / "out" / "a.json")
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == "accuracy"

    def test_accuracy_csv_rows(self, accuracy_result, tmp_path):
        rows = accuracy_csv_rows(accuracy_result)
        assert len(rows) == len(SMOKE.quantiles)
        path = write_csv(rows, tmp_path / "acc.csv")
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == len(rows)
        assert parsed[0]["sketch"] == "ddsketch"

    def test_speed_csv_rows(self, tmp_path):
        result = SpeedResult(
            operation="insertion",
            seconds_per_op={"a": 1e-6, "b": 2e-6},
        )
        rows = speed_csv_rows(result)
        assert {row["sketch"] for row in rows} == {"a", "b"}
        write_csv(rows, tmp_path / "speed.csv")

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_csv([], tmp_path / "x.csv")


class TestCLIOutputFlag:
    def test_writes_json_files(self, monkeypatch, tmp_path, capsys):
        from repro.experiments.cli import main

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["fig5a", "--output", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "fig5a.json").read_text())
        assert payload["kind"] == "speed"
