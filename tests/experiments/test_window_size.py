"""Tests for the Sec 4.7 window-size sensitivity runner (smoke scale)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.window_size import run_window_size

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def result():
    return run_window_size(
        datasets=("uniform",), sketches=("ddsketch",), scale=SMOKE,
        window_sizes_s=(1.0, 2.0),
    )


class TestWindowSize:
    def test_structure(self, result):
        assert set(result.results) == {"uniform"}
        assert set(result.results["uniform"]) == {1.0, 2.0}

    def test_overall_error_finite(self, result):
        for size in (1.0, 2.0):
            err = result.overall_error("uniform", size, "ddsketch")
            assert 0 <= err < 0.05

    def test_ddsketch_insensitive_to_window_size(self, result):
        # Sec 4.7: DD/UDD errors are consistent across window sizes.
        trend = result.trend("uniform", "ddsketch")
        assert abs(trend) < 0.01

    def test_table_renders(self, result):
        table = result.to_table()
        assert "1s" in table and "2s" in table
        assert "trend" in table
