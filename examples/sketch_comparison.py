"""Head-to-head sketch comparison on a chosen workload.

Runs all five of the paper's sketches (plus the t-digest and GK
baselines) over one of the study's data sets and prints accuracy, size
and timing side by side — a miniature version of the full benchmark
harness for interactive exploration.

Run: ``python examples/sketch_comparison.py [pareto|uniform|nyt|power]``
"""

import sys
import time

import numpy as np

from repro import paper_config
from repro.data import ACCURACY_DATASETS
from repro.metrics import PAPER_QUANTILES, relative_error, true_quantile

N = 500_000
SKETCHES = ("kll", "moments", "ddsketch", "uddsketch", "req",
            "tdigest", "gk")


def main(dataset: str = "nyt") -> None:
    if dataset not in ACCURACY_DATASETS:
        raise SystemExit(
            f"unknown dataset {dataset!r}; pick one of "
            f"{sorted(ACCURACY_DATASETS)}"
        )
    rng = np.random.default_rng(17)
    values = ACCURACY_DATASETS[dataset]().sample(N, rng)
    true_sorted = np.sort(values)

    print(f"dataset={dataset}, n={N:,}\n")
    print(f"{'sketch':>10} {'ingest':>9} {'query':>9} {'size':>9} "
          f"{'mid err':>9} {'tail err':>9}")
    for name in SKETCHES:
        sketch = paper_config(name, dataset=dataset, seed=1)
        start = time.perf_counter()
        if name == "gk":  # GK has no vectorised path; keep it honest
            sketch.update_batch(values[:50_000])
            reference = np.sort(values[:50_000])
        else:
            sketch.update_batch(values)
            reference = true_sorted
        ingest = time.perf_counter() - start

        start = time.perf_counter()
        estimates = sketch.quantiles(PAPER_QUANTILES)
        query = time.perf_counter() - start

        errors = {
            q: relative_error(true_quantile(reference, q), est)
            for q, est in zip(PAPER_QUANTILES, estimates)
        }
        mid = np.mean([errors[q] for q in (0.05, 0.25, 0.5, 0.75, 0.9)])
        tail = np.mean([errors[q] for q in (0.95, 0.98, 0.99)])
        print(f"{name:>10} {ingest:>8.2f}s {query * 1000:>7.2f}ms "
              f"{sketch.size_bytes() / 1000:>7.1f}KB "
              f"{mid:>9.4f} {tail:>9.4f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "nyt")
