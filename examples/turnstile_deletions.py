"""Turnstile streams: quantiles under insertions AND deletions.

The five sketches the paper evaluates are cash-register algorithms —
insert-only (Sec 5.1).  When the stream also retracts items (order
cancellations, TTL expiry, compensating events), a turnstile sketch is
needed; the paper's representative is the Dyadic Count Sketch
(Sec 5.2.3), which pays for deletions with a much larger footprint and
a bounded-universe requirement.

The scenario: an order book tracks the price distribution of open
orders.  Orders are placed and later filled or cancelled (deleted);
the p50/p95 of *open* orders must stay accurate throughout.

Run: ``python examples/turnstile_deletions.py``
"""

import numpy as np

from repro import DyadicCountSketch, KLLSketch

UNIVERSE_LOG2 = 16  # prices in [0, 65536) cents
N_ROUNDS = 5
ORDERS_PER_ROUND = 40_000


def quantile_report(label, sketch, open_orders):
    true = np.quantile(open_orders, [0.5, 0.95])
    est = [sketch.quantile(0.5), sketch.quantile(0.95)]
    print(f"{label:>28}: open={len(open_orders):>7,}  "
          f"p50 {est[0]:>7.0f} (true {true[0]:>7.0f})  "
          f"p95 {est[1]:>7.0f} (true {true[1]:>7.0f})")


def main() -> None:
    rng = np.random.default_rng(23)
    dcs = DyadicCountSketch(universe_log2=UNIVERSE_LOG2, seed=1)
    open_orders = np.zeros(0)

    for round_no in range(1, N_ROUNDS + 1):
        # Place new orders: lognormal prices in cents.
        placed = np.clip(
            np.round(rng.lognormal(8.0, 0.6, ORDERS_PER_ROUND)),
            1, (1 << UNIVERSE_LOG2) - 1,
        )
        dcs.update_batch(placed)
        open_orders = np.concatenate([open_orders, placed])

        # Fill/cancel open orders — cheap orders fill much faster, so
        # the *open* distribution drifts upward over time.
        fill_probability = np.where(open_orders < 3_000, 0.85, 0.35)
        filled = rng.random(open_orders.size) < fill_probability
        dcs.delete_batch(open_orders[filled])
        open_orders = open_orders[~filled]

        quantile_report(f"round {round_no}", dcs, open_orders)

    print(f"\nDCS footprint: {dcs.size_bytes() / 1000:.0f} KB "
          f"(bounded universe of {1 << UNIVERSE_LOG2:,} prices)")

    # Contrast: a cash-register sketch cannot retract, so after heavy
    # cancellation its estimates describe the wrong population.
    kll = KLLSketch(seed=1)
    rng = np.random.default_rng(23)
    all_seen = np.zeros(0)
    for _ in range(N_ROUNDS):
        placed = np.clip(
            np.round(rng.lognormal(8.0, 0.6, ORDERS_PER_ROUND)),
            1, (1 << UNIVERSE_LOG2) - 1,
        )
        kll.update_batch(placed)
        all_seen = np.concatenate([all_seen, placed])
    print(f"\ninsert-only KLL p95 over *all* orders ever placed: "
          f"{kll.quantile(0.95):.0f}")
    print(f"true p95 of the *open* orders only:                "
          f"{np.quantile(open_orders, 0.95):.0f}")
    print("-> cash-register sketches answer a different question once "
          "the stream retracts items")


if __name__ == "__main__":
    main()
