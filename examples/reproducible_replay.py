"""Reproducible experiment workflow: freeze a stream, replay it
anywhere, export structured results.

The paper's experiments run against fixed data files so results can be
compared run-to-run; this example shows the equivalent workflow here:

1. generate a timestamped workload once and freeze it to disk;
2. replay the identical events through two engine configurations;
3. verify the replay is byte-identical;
4. export the findings as JSON for downstream tooling.

Run: ``python examples/reproducible_replay.py``
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.core import UDDSketch, check_conformance
from repro.data import PowerConsumption, generate_stream, load_batch, save_batch
from repro.streaming import SketchAggregator, run_tumbling_batch

WINDOW_MS = 5_000.0


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-replay-"))

    # 1. Generate once, freeze to disk.
    rng = np.random.default_rng(99)
    batch = generate_stream(
        PowerConsumption(), duration_ms=30_000.0, rng=rng,
        rate_per_sec=2_000, delay_mean_ms=200.0,
    )
    stream_path = save_batch(batch, workdir / "power-stream.npz")
    print(f"froze {len(batch):,} events to {stream_path}")

    # 2. Replay through two configurations.
    replayed = load_batch(stream_path)
    aggregator = SketchAggregator(UDDSketch, quantiles=(0.5, 0.99))
    strict = run_tumbling_batch(replayed, WINDOW_MS, aggregator)
    tolerant = run_tumbling_batch(
        replayed, WINDOW_MS, aggregator, allowed_lateness_ms=1_000.0
    )

    # 3. Replays are deterministic: run it again, compare exactly.
    again = run_tumbling_batch(
        load_batch(stream_path), WINDOW_MS, aggregator
    )
    assert [r.result for r in strict.results] == (
        [r.result for r in again.results]
    )
    print("replay determinism: OK (bit-identical window results)")

    # 4. Export findings.
    findings = {
        "stream": stream_path.name,
        "events": len(replayed),
        "strict_drop": {
            "loss": strict.loss_fraction,
            "windows": [
                {"start_ms": r.window.start, **{
                    f"p{int(q * 100)}": est
                    for q, est in r.result.items()
                }}
                for r in strict.results
            ],
        },
        "with_allowed_lateness": {
            "loss": tolerant.loss_fraction,
        },
    }
    out_path = workdir / "findings.json"
    out_path.write_text(json.dumps(findings, indent=2))
    print(f"late-drop loss: strict {strict.loss_fraction:.3%} vs "
          f"1s lateness {tolerant.loss_fraction:.3%}")
    print(f"wrote {out_path}")

    # Bonus: the conformance battery any custom sketch should pass.
    report = check_conformance(UDDSketch, n=10_000)
    print(f"\nUDDSketch conformance: "
          f"{'OK' if report.ok else 'FAILED'}")
    for line in str(report).splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
