"""Web-latency monitoring with event-time windows.

The motivating use case of the DDSketch paper and Sec 4.2 of the study:
a monitoring pipeline tracks p95/p99 response times over tumbling
windows and raises an alert when the p99 degrades — the "2 s to 20 s at
the 0.99 quantile" service-disruption scenario.

A fault is injected halfway through the stream: 3% of requests slow
down 10x.  The per-window p99 picks it up immediately while the median
barely moves.

Run: ``python examples/web_latency_monitoring.py``
"""

import numpy as np

from repro.core import DDSketch
from repro.data import generate_stream
from repro.data.distributions import Distribution
from repro.streaming import SketchAggregator, run_tumbling_batch

WINDOW_MS = 10_000.0
RATE = 2_000  # requests per second
ALERT_P99_MS = 1_000.0


class WebTraffic(Distribution):
    """Lognormal service times with a fault injected after *fault_at*
    samples: a slice of requests becomes 10x slower."""

    name = "web-traffic"

    def __init__(self, fault_at: int) -> None:
        self.fault_at = fault_at
        self._seen = 0

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        values = rng.lognormal(mean=4.6, sigma=0.5, size=n)  # ~100ms median
        positions = self._seen + np.arange(n)
        faulty = positions >= self.fault_at
        slow = faulty & (rng.random(n) < 0.03)
        values[slow] *= 10.0
        self._seen += n
        return values


def main() -> None:
    rng = np.random.default_rng(11)
    duration_ms = 8 * WINDOW_MS
    traffic = WebTraffic(fault_at=int(RATE * duration_ms / 1000 / 2))
    batch = generate_stream(
        traffic, duration_ms, rng, rate_per_sec=RATE, delay_mean_ms=25.0
    )

    aggregator = SketchAggregator(
        lambda: DDSketch(alpha=0.01), quantiles=(0.5, 0.95, 0.99)
    )
    report = run_tumbling_batch(batch, WINDOW_MS, aggregator)

    print(f"{'window':>8} {'events':>7} {'p50':>8} {'p95':>8} "
          f"{'p99':>9}  status")
    for result in report.results:
        p50 = result.result[0.5]
        p95 = result.result[0.95]
        p99 = result.result[0.99]
        status = "ALERT: p99 degraded" if p99 > ALERT_P99_MS else "ok"
        label = f"{result.window.start / 1000:.0f}-" \
                f"{result.window.end / 1000:.0f}s"
        print(f"{label:>8} {result.event_count:>7} {p50:>8.1f} "
              f"{p95:>8.1f} {p99:>9.1f}  {status}")
    print(f"\nlate events dropped: {report.dropped_late} "
          f"({report.loss_fraction:.2%})")


if __name__ == "__main__":
    main()
