"""Event-time windows with late-arriving data (the Sec 4.6 scenario).

Taxi-fare events reach the pipeline after an exponential network delay,
so some arrive after their 20-second window has already fired and are
dropped.  The example runs the same stream through three configurations
— ideal network, delayed with a strict drop policy, and delayed with
allowed lateness — and shows how the median estimate and the loss rate
respond.

Run: ``python examples/late_data_pipeline.py``
"""

import numpy as np

from repro.core import UDDSketch
from repro.data import NYTFares, generate_stream
from repro.streaming import SketchAggregator, run_tumbling_batch

WINDOW_MS = 20_000.0
RATE = 2_500


def run(delay_ms, lateness_ms, label, batch):
    aggregator = SketchAggregator(lambda: UDDSketch(), quantiles=(0.5,))
    report = run_tumbling_batch(
        batch, WINDOW_MS, aggregator, allowed_lateness_ms=lateness_ms
    )
    medians = [r.result[0.5] for r in report.results]
    print(f"{label:>28}: loss={report.loss_fraction:>6.2%}  "
          f"median fare per window: "
          + " ".join(f"{m:.2f}" for m in medians))
    return report


def main() -> None:
    rng = np.random.default_rng(5)
    duration = 5 * WINDOW_MS

    ideal = generate_stream(
        NYTFares(), duration, rng, rate_per_sec=RATE, delay_mean_ms=None
    )
    # Same seed stream, but a heavy-tailed network delay: mean 600 ms,
    # exaggerated (vs the paper's 150 ms) to make the losses visible.
    rng = np.random.default_rng(5)
    delayed = generate_stream(
        NYTFares(), duration, rng, rate_per_sec=RATE, delay_mean_ms=600.0
    )

    run(None, 0.0, "ideal network", ideal)
    strict = run(600.0, 0.0, "delayed, drop late", delayed)
    relaxed = run(600.0, 2_000.0, "delayed, 2s allowed lateness", delayed)

    saved = strict.dropped_late - relaxed.dropped_late
    print(f"\nallowed lateness recovered {saved} of "
          f"{strict.dropped_late} late events")


if __name__ == "__main__":
    main()
