"""Quickstart: estimate quantiles of a stream in constant space.

Builds a DDSketch over a million latency-like values, queries the
median and tail quantiles, demonstrates merging and serialization, and
compares everything against the exact answers.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import DDSketch, ExactQuantiles, dumps, loads

rng = np.random.default_rng(7)

# A long-tailed "request latency" stream: 1M lognormal milliseconds.
latencies = rng.lognormal(mean=3.0, sigma=0.8, size=1_000_000)

# --- One-pass sketching ------------------------------------------------
sketch = DDSketch(alpha=0.01)  # 1% relative-error guarantee
sketch.update_batch(latencies)

exact = ExactQuantiles()
exact.update_batch(latencies)

print(f"stream length : {sketch.count:,}")
print(f"sketch size   : {sketch.size_bytes() / 1000:.2f} KB "
      f"(raw data: {8 * sketch.count / 1e6:.0f} MB)")
print()
print(f"{'quantile':>9} {'exact':>10} {'sketch':>10} {'rel.err':>8}")
for q in (0.5, 0.9, 0.95, 0.99, 0.999):
    true = exact.quantile(q)
    est = sketch.quantile(q)
    print(f"{q:>9} {true:>10.2f} {est:>10.2f} "
          f"{abs(est - true) / true:>8.4f}")

# --- Mergeability ------------------------------------------------------
# Split the stream across two "machines", sketch locally, merge.
left, right = DDSketch(alpha=0.01), DDSketch(alpha=0.01)
left.update_batch(latencies[:500_000])
right.update_batch(latencies[500_000:])
left.merge(right)
assert abs(left.quantile(0.99) - sketch.quantile(0.99)) < 1e-9
print("\nmerged sketch p99 equals single-pass sketch p99: OK")

# --- Serialization -----------------------------------------------------
payload = dumps(sketch)
restored = loads(payload)
assert restored.quantile(0.95) == sketch.quantile(0.95)
print(f"serialized to {len(payload):,} bytes and restored: OK")
