"""Distributed quantile aggregation through sketch merging.

The mergeability scenario of Sec 2.4: data is partitioned over many
workers; each worker summarises its partition locally, ships only the
sketch bytes, and a coordinator merges them.  The merged estimate is
compared against the exact quantiles of the full data — and the
network traffic against what centralising raw data would cost.

Every mergeable sketch in the library runs through the same pipeline,
reproducing the paper's observation that Moments Sketch merges are the
cheapest by an order of magnitude while sampling sketches (KLL/REQ) pay
for their compaction work.

Run: ``python examples/distributed_quantiles.py``
"""

import time

import numpy as np

from repro import dumps, loads, paper_config
from repro.data import NYTFares
from repro.metrics import relative_error, true_quantile

NUM_WORKERS = 32
ROWS_PER_WORKER = 50_000
QUANTILES = (0.5, 0.9, 0.99)


def main() -> None:
    rng = np.random.default_rng(3)
    partitions = [
        NYTFares().sample(ROWS_PER_WORKER, rng) for _ in range(NUM_WORKERS)
    ]
    all_data = np.sort(np.concatenate(partitions))
    raw_bytes = 8 * all_data.size

    print(f"{NUM_WORKERS} workers x {ROWS_PER_WORKER:,} rows "
          f"({raw_bytes / 1e6:.0f} MB of raw data)\n")
    print(f"{'sketch':>10} {'shipped':>10} {'merge time':>11} "
          + "".join(f"{'err@' + str(q):>10}" for q in QUANTILES))

    for name in ("kll", "moments", "ddsketch", "uddsketch", "req"):
        # Map phase: each worker sketches its partition and serializes.
        payloads = []
        for worker, partition in enumerate(partitions):
            sketch = paper_config(name, dataset="nyt", seed=worker)
            sketch.update_batch(partition)
            payloads.append(dumps(sketch))
        shipped = sum(len(p) for p in payloads)

        # Reduce phase: the coordinator deserializes and merges.
        start = time.perf_counter()
        merged = loads(payloads[0])
        for payload in payloads[1:]:
            merged.merge(loads(payload))
        merge_time = time.perf_counter() - start

        errors = [
            relative_error(true_quantile(all_data, q), merged.quantile(q))
            for q in QUANTILES
        ]
        print(f"{name:>10} {shipped / 1000:>8.1f}KB "
              f"{merge_time * 1000:>9.1f}ms "
              + "".join(f"{err:>10.4f}" for err in errors))

    print(f"\nshipping sketches instead of rows saves "
          f">{raw_bytes / 1e6:.0f}MB of traffic per aggregation")


if __name__ == "__main__":
    main()
