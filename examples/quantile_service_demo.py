"""Quantile service demo: a monitoring backend in one process.

Starts an in-process :class:`~repro.service.QuantileServer`, streams
lognormal latencies for three metrics through the TCP client, then
answers p50/p95/p99 over sliding time ranges — the "last 5 seconds"
dashboards the paper's Sec 4.2 monitoring scenario calls for — and
finishes with a client-observed query-latency report measured with one
of the repo's own sketches.

Everything runs on an injected :class:`~repro.service.ManualClock`, so
the output is identical on every run.

Run: ``python examples/quantile_service_demo.py``
"""

import time

import numpy as np

from repro.core import DDSketch
from repro.service import (
    ManualClock,
    MetricRegistry,
    QuantileClient,
    QuantileServer,
)

METRICS = ("api.latency", "db.latency", "queue.lag")
SIGMAS = {"api.latency": 0.5, "db.latency": 0.8, "queue.lag": 0.3}
SECONDS = 20
RATE = 500  # values per metric per second
QS = (0.5, 0.95, 0.99)


def ingest(client: QuantileClient, clock: ManualClock) -> int:
    rng = np.random.default_rng(2023)
    total = 0
    for second in range(SECONDS):
        clock.set_time(second * 1_000.0)
        for metric in METRICS:
            values = rng.lognormal(4.6, SIGMAS[metric], RATE)
            total += client.ingest(
                metric, values, timestamp_ms=second * 1_000.0
            )
    client.flush()  # barrier: every batch applied before we query
    return total


def sliding_report(client: QuantileClient) -> None:
    print(f"{'metric':>12} {'range':>10} {'events':>7} "
          f"{'p50':>8} {'p95':>8} {'p99':>9}")
    for metric in METRICS:
        for lookback_s in (5, 10, SECONDS):
            t1 = SECONDS * 1_000.0
            t0 = t1 - lookback_s * 1_000.0
            p50, p95, p99 = client.quantiles(metric, QS, t0=t0, t1=t1)
            count = client.count(metric, t0=t0, t1=t1)
            print(f"{metric:>12} {f'last {lookback_s}s':>10} "
                  f"{count:>7} {p50:>8.1f} {p95:>8.1f} {p99:>9.1f}")


def latency_report(client: QuantileClient) -> None:
    # Measure the service's own query latency with a repo sketch:
    # the instrument is the thing under study.
    latencies = DDSketch(alpha=0.01)
    for index in range(300):
        metric = METRICS[index % len(METRICS)]
        start = time.perf_counter()
        client.quantile(metric, 0.99, t0=index % 15 * 1_000.0)
        latencies.update((time.perf_counter() - start) * 1_000.0)
    p50, p99 = latencies.quantiles((0.5, 0.99))
    print(f"\nquery latency over {latencies.count} TCP round-trips: "
          f"p50={p50:.3f} ms  p99={p99:.3f} ms")


def main() -> None:
    clock = ManualClock(0.0)
    registry = MetricRegistry(
        sketch_factory=lambda: DDSketch(alpha=0.01),
        clock=clock,
        partition_ms=1_000.0,
        fine_partitions=120,
        hot_metrics=("api.latency",),
        n_shards=4,
    )
    with QuantileServer(registry, ingest_workers=2) as server:
        host, port = server.address
        print(f"quantile service listening on {host}:{port}\n")
        with QuantileClient(host, port) as client:
            total = ingest(client, clock)
            print(f"ingested {total} values across "
                  f"{len(METRICS)} metrics\n")
            sliding_report(client)
            latency_report(client)
            stats = client.stats()
            print(f"server stats: {stats['requests']} requests, "
                  f"{stats['ingested_values']} values applied, "
                  f"{stats['shed_requests']} shed")


if __name__ == "__main__":
    main()
